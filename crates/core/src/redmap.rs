//! The reduction map: an open-addressing hash map `Key → V` tuned for
//! Smart's access pattern — dense small-integer keys, upsert-heavy hot loop,
//! frequent whole-map iteration and drain, occasional erase (early
//! emission).
//!
//! `std::collections::HashMap` with SipHash would dominate the reduce loop
//! for cheap analytics like histogram; this map uses Fibonacci hashing and
//! linear probing instead (the approach `rustc`'s FxHashMap takes, see the
//! Rust Performance Book's Hashing chapter), implemented here because the
//! allowed dependency set contains no fast-hash crate.

use crate::api::Key;

const INITIAL_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
enum Slot<V> {
    Empty,
    /// Deleted entry; probes continue past it, inserts may reuse it.
    Tomb,
    /// Live entry. `value` is `None` only transiently, between
    /// [`RedMap::slot_mut`] creating the slot and `accumulate` filling it.
    Full {
        key: Key,
        value: Option<V>,
    },
}

/// Open-addressing reduction map.
#[derive(Debug, Clone)]
pub struct RedMap<V> {
    slots: Vec<Slot<V>>,
    /// Live entries (Full slots).
    len: usize,
    /// Tombstones currently in the table.
    tombs: usize,
}

#[inline]
fn fib_hash(key: Key, mask: usize) -> usize {
    // Fibonacci multiply followed by a splitmix64 finalizer. The finalizer
    // matters: window analytics insert long runs of *consecutive* keys, and
    // a bare multiplicative hash maps those to a constant stride — which
    // linear probing turns into catastrophic clustering near high load
    // (measured: a 393k-entry map degraded ~100x without the finalizer).
    let mut h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h as usize & mask
}

impl<V> Default for RedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> RedMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        RedMap { slots: Vec::new(), len: 0, tombs: 0 }
    }

    /// An empty map with room for `n` entries without rehashing. Uses the
    /// same 8/7-load sizing as [`reserve`](Self::reserve) so the two paths
    /// agree on when a rehash is due.
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n * 8 / 7 + 1).next_power_of_two().max(INITIAL_CAPACITY);
        RedMap { slots: (0..cap).map(|_| Slot::Empty).collect(), len: 0, tombs: 0 }
    }

    /// Allocated slot count. Entries fit without a rehash while
    /// `len + tombstones` stays below 7/8 of this.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Live entries in the map.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map has no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = Slot::Empty;
        }
        self.len = 0;
        self.tombs = 0;
    }

    /// Index of the slot holding `key`, if present.
    fn find(&self, key: Key) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = fib_hash(key, mask);
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Full { key: k, .. } if *k == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Pre-size the table so `additional` more entries fit without any
    /// rehash. Bulk merges MUST call this: draining one table in slot order
    /// and reinserting with the same hash function produces ascending home
    /// slots, and if the destination passes through a smaller capacity the
    /// ascending order folds into multiple passes over an almost-full
    /// prefix — a measured ~25x quadratic blow-up at ~0.75 final load.
    /// Pre-sizing keeps ascending-order insertion collision-free.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.len + self.tombs + additional;
        let target_cap = (needed * 8 / 7 + 1).next_power_of_two().max(INITIAL_CAPACITY);
        if target_cap <= self.slots.len() {
            return;
        }
        let old =
            std::mem::replace(&mut self.slots, (0..target_cap).map(|_| Slot::Empty).collect());
        self.tombs = 0;
        let mask = target_cap - 1;
        for slot in old {
            if let Slot::Full { key, value } = slot {
                let mut i = fib_hash(key, mask);
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full { key, value };
            }
        }
    }

    /// Grow/rehash so at least one more entry fits below a 7/8 load factor
    /// (counting tombstones, which degrade probing like live entries).
    fn ensure_room(&mut self) {
        let cap = self.slots.len();
        if cap == 0 {
            self.slots = (0..INITIAL_CAPACITY).map(|_| Slot::Empty).collect();
            return;
        }
        if (self.len + self.tombs + 1) * 8 <= cap * 7 {
            return;
        }
        // Double if genuinely full; same size if tombstones are the problem.
        let new_cap = if (self.len + 1) * 8 > cap * 7 { cap * 2 } else { cap };
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| Slot::Empty).collect());
        self.tombs = 0;
        let mask = new_cap - 1;
        for slot in old {
            if let Slot::Full { key, value } = slot {
                let mut i = fib_hash(key, mask);
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full { key, value };
            }
        }
    }

    /// The value slot for `key`, creating an empty (`None`) slot if the key
    /// is absent — the runtime hands this to `accumulate`, mirroring the
    /// paper's `unique_ptr<RedObj>&` null-on-first-touch contract.
    pub fn slot_mut(&mut self, key: Key) -> &mut Option<V> {
        if let Some(i) = self.find(key) {
            match &mut self.slots[i] {
                Slot::Full { value, .. } => return value,
                _ => unreachable!("find returned a non-full slot"),
            }
        }
        self.ensure_room();
        let mask = self.slots.len() - 1;
        let mut i = fib_hash(key, mask);
        loop {
            match &self.slots[i] {
                Slot::Empty | Slot::Tomb => break,
                _ => i = (i + 1) & mask,
            }
        }
        if matches!(self.slots[i], Slot::Tomb) {
            self.tombs -= 1;
        }
        self.slots[i] = Slot::Full { key, value: None };
        self.len += 1;
        match &mut self.slots[i] {
            Slot::Full { value, .. } => value,
            _ => unreachable!(),
        }
    }

    /// Insert `value` under `key`, returning the previous value if any.
    pub fn insert(&mut self, key: Key, value: V) -> Option<V> {
        self.slot_mut(key).replace(value)
    }

    /// Borrow the value for `key`.
    pub fn get(&self, key: Key) -> Option<&V> {
        self.find(key).and_then(|i| match &self.slots[i] {
            Slot::Full { value, .. } => value.as_ref(),
            _ => None,
        })
    }

    /// Mutably borrow the value for `key`.
    pub fn get_mut(&mut self, key: Key) -> Option<&mut V> {
        match self.find(key) {
            Some(i) => match &mut self.slots[i] {
                Slot::Full { value, .. } => value.as_mut(),
                _ => None,
            },
            None => None,
        }
    }

    /// `true` if `key` has a live entry.
    pub fn contains_key(&self, key: Key) -> bool {
        self.find(key).is_some()
    }

    /// Remove and return the value for `key`.
    pub fn remove(&mut self, key: Key) -> Option<V> {
        let i = self.find(key)?;
        let slot = std::mem::replace(&mut self.slots[i], Slot::Tomb);
        self.len -= 1;
        self.tombs += 1;
        match slot {
            Slot::Full { value, .. } => value,
            _ => unreachable!("find returned a non-full slot"),
        }
    }

    /// Iterate over live `(key, &value)` entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (Key, &V)> {
        self.slots.iter().filter_map(|s| match s {
            Slot::Full { key, value: Some(v) } => Some((*key, v)),
            _ => None,
        })
    }

    /// Iterate over live `(key, &mut value)` entries (arbitrary order).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Key, &mut V)> {
        self.slots.iter_mut().filter_map(|s| match s {
            Slot::Full { key, value: Some(v) } => Some((*key, v)),
            _ => None,
        })
    }

    /// Live keys (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Empty the map, returning all live entries.
    pub fn drain_entries(&mut self) -> Vec<(Key, V)> {
        let mut out = Vec::with_capacity(self.len);
        for slot in &mut self.slots {
            if let Slot::Full { key, value: Some(v) } = std::mem::replace(slot, Slot::Empty) {
                out.push((key, v));
            }
        }
        self.len = 0;
        self.tombs = 0;
        out
    }

    /// Copy all live entries out (keys with cloned values), sorted by key —
    /// the canonical form used for serialization and deterministic output.
    pub fn to_sorted_entries(&self) -> Vec<(Key, V)>
    where
        V: Clone,
    {
        let mut v: Vec<(Key, V)> = self.iter().map(|(k, o)| (k, o.clone())).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Build a map from entries (later duplicates overwrite earlier ones).
    /// Pre-sizes from the iterator's length hint (see [`reserve`](Self::reserve)
    /// for why bulk builds must not grow incrementally).
    pub fn from_entries(entries: impl IntoIterator<Item = (Key, V)>) -> Self {
        let iter = entries.into_iter();
        let mut m = RedMap::with_capacity(iter.size_hint().0);
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<V> FromIterator<(Key, V)> for RedMap<V> {
    fn from_iter<I: IntoIterator<Item = (Key, V)>>(iter: I) -> Self {
        Self::from_entries(iter)
    }
}

impl<V> Extend<(Key, V)> for RedMap<V> {
    /// Pre-sizes from the iterator's length hint before inserting, for the
    /// same reason as [`RedMap::reserve`]: extending with drain-order
    /// entries through incremental growth hits the folded-ascending-order
    /// quadratic pathology.
    fn extend<I: IntoIterator<Item = (Key, V)>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        self.reserve(iter.size_hint().0);
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn empty_map_behaves() {
        let m: RedMap<u32> = RedMap::new();
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
        assert_eq!(m.get(0), None);
        assert!(!m.contains_key(7));
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = RedMap::new();
        assert_eq!(m.insert(3, "three"), None);
        assert_eq!(m.insert(3, "THREE"), Some("three"));
        assert_eq!(m.get(3), Some(&"THREE"));
        assert_eq!(m.remove(3), Some("THREE"));
        assert_eq!(m.remove(3), None);
        assert!(m.is_empty());
    }

    #[test]
    fn slot_mut_creates_then_fills() {
        let mut m: RedMap<u64> = RedMap::new();
        let slot = m.slot_mut(5);
        assert!(slot.is_none());
        *slot = Some(42);
        assert_eq!(m.get(5), Some(&42));
        assert_eq!(m.len(), 1);
        // Second access sees the value.
        assert_eq!(m.slot_mut(5).unwrap(), 42);
    }

    #[test]
    fn negative_and_extreme_keys_work() {
        let mut m = RedMap::new();
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            m.insert(k, k as i128 * 2);
        }
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(m.get(k), Some(&(k as i128 * 2)));
        }
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = RedMap::new();
        for k in 0..10_000i64 {
            m.insert(k, k * k);
        }
        assert_eq!(m.len(), 10_000);
        for k in (0..10_000i64).step_by(97) {
            assert_eq!(m.get(k), Some(&(k * k)));
        }
    }

    #[test]
    fn tombstone_churn_does_not_lose_entries() {
        let mut m = RedMap::with_capacity(8);
        // Insert/remove the same small working set far more times than the
        // capacity — exercises tombstone reuse and same-size rehash.
        for round in 0..1000i64 {
            m.insert(round % 7, round);
            if round % 3 == 0 {
                m.remove((round + 1) % 7);
            }
        }
        assert!(m.len() <= 7);
        for (k, v) in m.iter() {
            assert_eq!(k, v % 7);
        }
    }

    #[test]
    fn drain_empties_and_returns_everything() {
        let mut m = RedMap::new();
        for k in 0..100 {
            m.insert(k, k);
        }
        let mut drained = m.drain_entries();
        drained.sort_unstable();
        assert_eq!(drained, (0..100).map(|k| (k, k)).collect::<Vec<_>>());
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
        // Map is reusable after drain.
        m.insert(5, 5);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn reserve_preserves_entries_and_prevents_growth() {
        let mut m: RedMap<i64> = RedMap::new();
        for k in 0..100 {
            m.insert(k, k * 2);
        }
        m.reserve(10_000);
        // All pre-reserve entries survive the rehash.
        for k in 0..100 {
            assert_eq!(m.get(k), Some(&(k * 2)));
        }
        // Filling to the reserved size must not lose anything either.
        for k in 100..10_100 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.len(), 10_100);
        assert_eq!(m.get(9_999), Some(&(2 * 9_999)));
    }

    #[test]
    fn drain_order_reinsert_is_not_quadratic() {
        // Regression test for the folded-ascending-order pathology: drain a
        // large map in slot order and reinsert through the pre-sizing path.
        // Sized so the unfixed code path took seconds while this takes
        // milliseconds; a generous wall-clock bound keeps the test robust
        // while still catching a quadratic regression.
        let n = 393_216i64;
        let mut src: RedMap<u64> = RedMap::new();
        for k in 0..n {
            src.insert(k, 1);
        }
        let entries = src.drain_entries();
        let started = std::time::Instant::now();
        let mut dst: RedMap<u64> = RedMap::new();
        dst.reserve(entries.len());
        for (k, v) in entries {
            dst.insert(k, v);
        }
        assert_eq!(dst.len(), n as usize);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "drain-order reinsert took {:?} — quadratic clustering is back",
            started.elapsed()
        );
    }

    #[test]
    fn sorted_entries_are_sorted() {
        let m: RedMap<i64> = RedMap::from_entries([(5, 50), (1, 10), (3, 30)]);
        assert_eq!(m.to_sorted_entries(), vec![(1, 10), (3, 30), (5, 50)]);
    }

    #[test]
    fn iter_mut_updates_in_place() {
        let mut m: RedMap<i64> = RedMap::from_entries([(1, 1), (2, 2)]);
        for (_, v) in m.iter_mut() {
            *v *= 10;
        }
        assert_eq!(m.get(1), Some(&10));
        assert_eq!(m.get(2), Some(&20));
    }

    #[test]
    fn clear_keeps_allocation_and_resets() {
        let mut m = RedMap::with_capacity(100);
        for k in 0..50 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(10), None);
        m.insert(1, 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn extend_and_collect() {
        let mut m: RedMap<u8> = (0..5).map(|k| (k, k as u8)).collect();
        m.extend([(10, 10u8), (11, 11)]);
        assert_eq!(m.len(), 7);
    }

    #[test]
    fn with_capacity_agrees_with_reserve_on_sizing() {
        for n in [0usize, 1, 7, 14, 100, 1000, 100_000] {
            let pre: RedMap<u64> = RedMap::with_capacity(n);
            let mut post: RedMap<u64> = RedMap::new();
            post.reserve(n);
            assert_eq!(pre.capacity(), post.capacity(), "n = {n}");
        }
    }

    #[test]
    fn with_capacity_holds_n_entries_without_rehash() {
        for n in [1usize, 14, 100, 1000] {
            let mut m: RedMap<i64> = RedMap::with_capacity(n);
            let cap = m.capacity();
            for k in 0..n as i64 {
                m.insert(k, k);
            }
            assert_eq!(m.capacity(), cap, "rehashed while filling to n = {n}");
        }
    }

    #[test]
    fn extend_with_drain_order_entries_is_not_quadratic() {
        // Same pathology as `drain_order_reinsert_is_not_quadratic`, but
        // through the `Extend` impl, which must pre-reserve from the
        // iterator's length hint.
        let n = 393_216i64;
        let mut src: RedMap<u64> = RedMap::new();
        for k in 0..n {
            src.insert(k, 1);
        }
        let entries = src.drain_entries();
        let started = std::time::Instant::now();
        let mut dst: RedMap<u64> = RedMap::new();
        dst.extend(entries);
        assert_eq!(dst.len(), n as usize);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "drain-order extend took {:?} — Extend is not pre-reserving",
            started.elapsed()
        );
    }

    proptest! {
        /// Command-sequence equivalence against std HashMap.
        #[test]
        fn behaves_like_std_hashmap(ops in proptest::collection::vec(
            (0u8..4, -50i64..50, any::<u32>()), 0..400))
        {
            let mut ours: RedMap<u32> = RedMap::new();
            let mut model: HashMap<i64, u32> = HashMap::new();
            for (op, key, val) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(ours.insert(key, val), model.insert(key, val));
                    }
                    1 => {
                        prop_assert_eq!(ours.remove(key), model.remove(&key));
                    }
                    2 => {
                        prop_assert_eq!(ours.get(key), model.get(&key));
                    }
                    _ => {
                        prop_assert_eq!(ours.contains_key(key), model.contains_key(&key));
                    }
                }
                prop_assert_eq!(ours.len(), model.len());
            }
            let mut a = ours.to_sorted_entries();
            let mut b: Vec<(i64, u32)> = model.into_iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn drain_matches_iter(keys in proptest::collection::hash_set(-1000i64..1000, 0..200)) {
            let mut m: RedMap<i64> = keys.iter().map(|&k| (k, k * 3)).collect();
            let via_iter: std::collections::BTreeMap<i64, i64> =
                m.iter().map(|(k, &v)| (k, v)).collect();
            let via_drain: std::collections::BTreeMap<i64, i64> =
                m.drain_entries().into_iter().collect();
            prop_assert_eq!(via_iter, via_drain);
        }
    }
}
