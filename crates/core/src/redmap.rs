//! The reduction map: a `Key → V` map tuned for Smart's access pattern —
//! dense small-integer keys, upsert-heavy hot loop, frequent whole-map
//! iteration and drain, occasional erase (early emission).
//!
//! Two backends share one API:
//!
//! * **Hash** — open addressing with Fibonacci hashing and linear probing
//!   (the approach `rustc`'s FxHashMap takes, see the Rust Performance
//!   Book's Hashing chapter), implemented here because the allowed
//!   dependency set contains no fast-hash crate.
//!   `std::collections::HashMap` with SipHash would dominate the reduce
//!   loop for cheap analytics like histogram.
//! * **Dense** — a direct-indexed flat table for analytics that declare a
//!   key bound via [`Analytics::key_bound`](crate::Analytics::key_bound)
//!   (histogram buckets, k-means clusters, …). Lookup is one bounds check
//!   and one indexed load; no hashing, no probing. The first *mutating*
//!   access outside `[0, bound)` spills the table into the hash backend,
//!   so the dense path is purely an optimization: both backends are
//!   observationally identical (covered by the proptest model suite).
//!
//! Construct with [`RedMap::with_key_bound`] to get the dense backend
//! (bounds above [`DENSE_KEY_CAP`] fall back to hashing so a huge declared
//! key space cannot balloon memory); every other constructor yields the
//! hash backend.

use crate::api::Key;

const INITIAL_CAPACITY: usize = 16;

/// Largest `key_bound` the dense backend will direct-index. Bounds above
/// this fall back to the hash backend: a flat table is only a win while
/// it stays cache-friendly and its `O(bound)` clear/iterate cost stays
/// proportional to the data actually reduced.
pub const DENSE_KEY_CAP: usize = 1 << 16;

#[derive(Debug, Clone)]
enum Slot<V> {
    Empty,
    /// Deleted entry; probes continue past it, inserts may reuse it.
    Tomb,
    /// Live entry. `value` is `None` only transiently, between
    /// [`RedMap::slot_mut`] creating the slot and `accumulate` filling it.
    Full {
        key: Key,
        value: Option<V>,
    },
}

/// Open-addressing core (the hash backend).
#[derive(Debug, Clone)]
struct HashCore<V> {
    slots: Vec<Slot<V>>,
    /// Live entries (Full slots).
    len: usize,
    /// Tombstones currently in the table.
    tombs: usize,
}

/// Direct-indexed core (the dense backend). `table[key]`:
/// `None` = absent, `Some(None)` = transient slot created by `slot_mut`
/// but not yet filled by `accumulate` (mirrors the hash backend's
/// `Full { value: None }`), `Some(Some(v))` = live value.
#[derive(Debug, Clone)]
struct DenseCore<V> {
    table: Vec<Option<Option<V>>>,
    /// Live entries (outer `Some` slots).
    len: usize,
}

#[derive(Debug, Clone)]
enum Repr<V> {
    Hash(HashCore<V>),
    Dense(DenseCore<V>),
}

/// Reduction map with hash and dense-direct-index backends (see module docs).
#[derive(Debug, Clone)]
pub struct RedMap<V> {
    repr: Repr<V>,
}

#[inline]
fn fib_hash(key: Key, mask: usize) -> usize {
    // Fibonacci multiply followed by a splitmix64 finalizer. The finalizer
    // matters: window analytics insert long runs of *consecutive* keys, and
    // a bare multiplicative hash maps those to a constant stride — which
    // linear probing turns into catastrophic clustering near high load
    // (measured: a 393k-entry map degraded ~100x without the finalizer).
    let mut h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h as usize & mask
}

impl<V> HashCore<V> {
    fn new() -> Self {
        HashCore { slots: Vec::new(), len: 0, tombs: 0 }
    }

    fn with_capacity(n: usize) -> Self {
        let cap = (n * 8 / 7 + 1).next_power_of_two().max(INITIAL_CAPACITY);
        HashCore { slots: (0..cap).map(|_| Slot::Empty).collect(), len: 0, tombs: 0 }
    }

    fn clear(&mut self) {
        for s in &mut self.slots {
            *s = Slot::Empty;
        }
        self.len = 0;
        self.tombs = 0;
    }

    /// Index of the slot holding `key`, if present.
    // PANIC-FREE: probe indices are masked by len − 1 (len is a power of two), so always in bounds.
    fn find(&self, key: Key) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = fib_hash(key, mask);
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Full { key: k, .. } if *k == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    // PANIC-FREE: probe indices are masked by the new capacity − 1 (a power of two), so always in bounds.
    fn reserve(&mut self, additional: usize) {
        let needed = self.len + self.tombs + additional;
        let target_cap = (needed * 8 / 7 + 1).next_power_of_two().max(INITIAL_CAPACITY);
        if target_cap <= self.slots.len() {
            return;
        }
        let old =
            std::mem::replace(&mut self.slots, (0..target_cap).map(|_| Slot::Empty).collect());
        self.tombs = 0;
        let mask = target_cap - 1;
        for slot in old {
            if let Slot::Full { key, value } = slot {
                let mut i = fib_hash(key, mask);
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full { key, value };
            }
        }
    }

    /// Grow/rehash so at least one more entry fits below a 7/8 load factor
    /// (counting tombstones, which degrade probing like live entries).
    // PANIC-FREE: probe indices are masked by the new capacity − 1 (a power of two), so always in bounds.
    fn ensure_room(&mut self) {
        let cap = self.slots.len();
        if cap == 0 {
            self.slots = (0..INITIAL_CAPACITY).map(|_| Slot::Empty).collect();
            return;
        }
        if (self.len + self.tombs + 1) * 8 <= cap * 7 {
            return;
        }
        // Double if genuinely full; same size if tombstones are the problem.
        let new_cap = if (self.len + 1) * 8 > cap * 7 { cap * 2 } else { cap };
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| Slot::Empty).collect());
        self.tombs = 0;
        let mask = new_cap - 1;
        for slot in old {
            if let Slot::Full { key, value } = slot {
                let mut i = fib_hash(key, mask);
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full { key, value };
            }
        }
    }

    // PANIC-FREE: indices come from find() or are masked by len − 1 (a power of two), so always in bounds.
    fn slot_mut(&mut self, key: Key) -> &mut Option<V> {
        if let Some(i) = self.find(key) {
            match &mut self.slots[i] {
                Slot::Full { value, .. } => return value,
                // PANIC-FREE: find() only returns indices of Full slots.
                _ => unreachable!("find returned a non-full slot"),
            }
        }
        self.ensure_room();
        let mask = self.slots.len() - 1;
        let mut i = fib_hash(key, mask);
        loop {
            match &self.slots[i] {
                Slot::Empty | Slot::Tomb => break,
                _ => i = (i + 1) & mask,
            }
        }
        if matches!(self.slots[i], Slot::Tomb) {
            self.tombs -= 1;
        }
        self.slots[i] = Slot::Full { key, value: None };
        self.len += 1;
        match &mut self.slots[i] {
            Slot::Full { value, .. } => value,
            // PANIC-FREE: slot i was assigned Full on the line above.
            _ => unreachable!(),
        }
    }

    // PANIC-FREE: find() returns in-bounds indices of Full slots.
    fn remove(&mut self, key: Key) -> Option<V> {
        let i = self.find(key)?;
        let slot = std::mem::replace(&mut self.slots[i], Slot::Tomb);
        self.len -= 1;
        self.tombs += 1;
        match slot {
            Slot::Full { value, .. } => value,
            // PANIC-FREE: find() only returns indices of Full slots.
            _ => unreachable!("find returned a non-full slot"),
        }
    }
}

impl<V> DenseCore<V> {
    /// `true` when `key` indexes inside the table.
    #[inline]
    fn in_bounds(&self, key: Key) -> bool {
        key >= 0 && (key as usize) < self.table.len()
    }
}

impl<V> Default for RedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> RedMap<V> {
    /// An empty map (hash backend).
    pub fn new() -> Self {
        RedMap { repr: Repr::Hash(HashCore::new()) }
    }

    /// An empty hash-backend map with room for `n` entries without
    /// rehashing. Uses the same 8/7-load sizing as [`reserve`](Self::reserve)
    /// so the two paths agree on when a rehash is due.
    pub fn with_capacity(n: usize) -> Self {
        RedMap { repr: Repr::Hash(HashCore::with_capacity(n)) }
    }

    /// An empty map whose keys are promised to lie in `[0, bound)` — the
    /// dense direct-indexed backend. The promise is a hint, not a contract:
    /// the first mutating access outside the bound spills into the hash
    /// backend with all entries preserved. Bounds of `0` or above
    /// [`DENSE_KEY_CAP`] fall back to the hash backend immediately.
    pub fn with_key_bound(bound: usize) -> Self {
        if bound == 0 || bound > DENSE_KEY_CAP {
            return Self::new();
        }
        let mut table = Vec::with_capacity(bound);
        table.resize_with(bound, || None);
        RedMap { repr: Repr::Dense(DenseCore { table, len: 0 }) }
    }

    /// `true` while the map is on the dense direct-indexed backend.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// Allocated slot count. On the hash backend, entries fit without a
    /// rehash while `len + tombstones` stays below 7/8 of this; on the
    /// dense backend this is the key bound.
    pub fn capacity(&self) -> usize {
        match &self.repr {
            Repr::Hash(h) => h.slots.len(),
            Repr::Dense(d) => d.table.len(),
        }
    }

    /// Bytes retained by the map's table allocation (not counting heap
    /// data owned by the values themselves). Used by the scheduler to
    /// account reused per-thread maps against the memory budget.
    pub fn retained_bytes(&self) -> usize {
        match &self.repr {
            Repr::Hash(h) => h.slots.capacity() * std::mem::size_of::<Slot<V>>(),
            Repr::Dense(d) => d.table.capacity() * std::mem::size_of::<Option<Option<V>>>(),
        }
    }

    /// Live entries in the map.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Hash(h) => h.len,
            Repr::Dense(d) => d.len,
        }
    }

    /// `true` when the map has no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove every entry, keeping the allocation (and the backend).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Hash(h) => h.clear(),
            Repr::Dense(d) => {
                for s in &mut d.table {
                    *s = None;
                }
                d.len = 0;
            }
        }
    }

    /// Spill the dense table into the hash backend, preserving every entry
    /// (including transient `None` slots). No-op on the hash backend.
    fn spill_to_hash(&mut self) {
        if let Repr::Dense(d) = &mut self.repr {
            // Headroom beyond the current entries: the spill is triggered
            // by a key we are about to insert, and more strays usually
            // follow.
            let mut h = HashCore::with_capacity(d.len * 2 + INITIAL_CAPACITY);
            for (i, slot) in d.table.iter_mut().enumerate() {
                if let Some(inner) = slot.take() {
                    *h.slot_mut(i as Key) = inner;
                }
            }
            self.repr = Repr::Hash(h);
        }
    }

    /// `true` when a mutating access to `key` requires leaving the dense
    /// backend first.
    fn needs_spill(&self, key: Key) -> bool {
        matches!(&self.repr, Repr::Dense(d) if !d.in_bounds(key))
    }

    /// Pre-size the table so `additional` more entries fit without any
    /// rehash. Bulk merges MUST call this: draining one table in slot order
    /// and reinserting with the same hash function produces ascending home
    /// slots, and if the destination passes through a smaller capacity the
    /// ascending order folds into multiple passes over an almost-full
    /// prefix — a measured ~25x quadratic blow-up at ~0.75 final load.
    /// Pre-sizing keeps ascending-order insertion collision-free.
    /// No-op on the dense backend (direct indexing never rehashes).
    pub fn reserve(&mut self, additional: usize) {
        if let Repr::Hash(h) = &mut self.repr {
            h.reserve(additional);
        }
    }

    /// The value slot for `key`, creating an empty (`None`) slot if the key
    /// is absent — the runtime hands this to `accumulate`, mirroring the
    /// paper's `unique_ptr<RedObj>&` null-on-first-touch contract.
    // PANIC-FREE: needs_spill() just guaranteed dense keys index inside the table.
    pub fn slot_mut(&mut self, key: Key) -> &mut Option<V> {
        if self.needs_spill(key) {
            self.spill_to_hash();
        }
        match &mut self.repr {
            Repr::Dense(d) => {
                let slot = &mut d.table[key as usize];
                if slot.is_none() {
                    *slot = Some(None);
                    d.len += 1;
                }
                match slot {
                    Some(inner) => inner,
                    // PANIC-FREE: the branch above filled the slot if it was None.
                    None => unreachable!("slot was just created"),
                }
            }
            Repr::Hash(h) => h.slot_mut(key),
        }
    }

    /// Insert `value` under `key`, returning the previous value if any.
    pub fn insert(&mut self, key: Key, value: V) -> Option<V> {
        self.slot_mut(key).replace(value)
    }

    /// Merge one externally-held value into `key`'s slot without
    /// materializing it first: if the key is present, `merge(src, value)`
    /// folds the source in place; if absent, `decode(src)` produces the
    /// owned value once. This is the map half of the wire-view receive path
    /// — `src` is typically a positioned deserializer over a received
    /// combination payload, and only genuinely new keys pay a decode.
    ///
    /// On an `Err` from `decode`, the freshly created slot stays empty
    /// (`None`); callers discard the map on error paths, so the transient
    /// hole is never observed.
    pub fn merge_view<S, E>(
        &mut self,
        key: Key,
        src: &mut S,
        merge: impl FnOnce(&mut S, &mut V) -> Result<(), E>,
        decode: impl FnOnce(&mut S) -> Result<V, E>,
    ) -> Result<(), E> {
        let slot = self.slot_mut(key);
        match slot {
            Some(value) => merge(src, value),
            None => {
                *slot = Some(decode(src)?);
                Ok(())
            }
        }
    }

    /// Borrow the value for `key`.
    // PANIC-FREE: dense access is gated by in_bounds(); hash indices come from find().
    pub fn get(&self, key: Key) -> Option<&V> {
        match &self.repr {
            Repr::Dense(d) => {
                if !d.in_bounds(key) {
                    return None;
                }
                d.table[key as usize].as_ref().and_then(|inner| inner.as_ref())
            }
            Repr::Hash(h) => h.find(key).and_then(|i| match &h.slots[i] {
                Slot::Full { value, .. } => value.as_ref(),
                _ => None,
            }),
        }
    }

    /// Mutably borrow the value for `key`.
    // PANIC-FREE: dense access is gated by in_bounds(); hash indices come from find().
    pub fn get_mut(&mut self, key: Key) -> Option<&mut V> {
        match &mut self.repr {
            Repr::Dense(d) => {
                if !d.in_bounds(key) {
                    return None;
                }
                d.table[key as usize].as_mut().and_then(|inner| inner.as_mut())
            }
            Repr::Hash(h) => match h.find(key) {
                Some(i) => match &mut h.slots[i] {
                    Slot::Full { value, .. } => value.as_mut(),
                    _ => None,
                },
                None => None,
            },
        }
    }

    /// `true` if `key` has a live entry.
    // PANIC-FREE: dense access is gated by in_bounds().
    pub fn contains_key(&self, key: Key) -> bool {
        match &self.repr {
            Repr::Dense(d) => d.in_bounds(key) && d.table[key as usize].is_some(),
            Repr::Hash(h) => h.find(key).is_some(),
        }
    }

    /// Remove and return the value for `key`. Out-of-bound keys on the
    /// dense backend cannot have entries, so removal never forces a spill.
    // PANIC-FREE: dense access is gated by in_bounds().
    pub fn remove(&mut self, key: Key) -> Option<V> {
        match &mut self.repr {
            Repr::Dense(d) => {
                if !d.in_bounds(key) {
                    return None;
                }
                match d.table[key as usize].take() {
                    Some(inner) => {
                        d.len -= 1;
                        inner
                    }
                    None => None,
                }
            }
            Repr::Hash(h) => h.remove(key),
        }
    }

    /// Iterate over live `(key, &value)` entries. Arbitrary order on the
    /// hash backend; ascending keys on the dense backend.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &V)> {
        let (hash, dense) = match &self.repr {
            Repr::Hash(h) => (Some(h.slots.iter()), None),
            Repr::Dense(d) => (None, Some(d.table.iter().enumerate())),
        };
        let hash_iter = hash.into_iter().flatten().filter_map(|s| match s {
            Slot::Full { key, value: Some(v) } => Some((*key, v)),
            _ => None,
        });
        let dense_iter = dense.into_iter().flatten().filter_map(|(i, s)| match s {
            Some(Some(v)) => Some((i as Key, v)),
            _ => None,
        });
        hash_iter.chain(dense_iter)
    }

    /// Iterate over live `(key, &mut value)` entries (order as [`iter`](Self::iter)).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Key, &mut V)> {
        let (hash, dense) = match &mut self.repr {
            Repr::Hash(h) => (Some(h.slots.iter_mut()), None),
            Repr::Dense(d) => (None, Some(d.table.iter_mut().enumerate())),
        };
        let hash_iter = hash.into_iter().flatten().filter_map(|s| match s {
            Slot::Full { key, value: Some(v) } => Some((*key, v)),
            _ => None,
        });
        let dense_iter = dense.into_iter().flatten().filter_map(|(i, s)| match s {
            Some(Some(v)) => Some((i as Key, v)),
            _ => None,
        });
        hash_iter.chain(dense_iter)
    }

    /// Live keys (order as [`iter`](Self::iter)).
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Empty the map, returning all live entries. Keeps the allocation and
    /// the backend, so a reused map stays dense.
    pub fn drain_entries(&mut self) -> Vec<(Key, V)> {
        match &mut self.repr {
            Repr::Hash(h) => {
                let mut out = Vec::with_capacity(h.len);
                for slot in &mut h.slots {
                    if let Slot::Full { key, value: Some(v) } = std::mem::replace(slot, Slot::Empty)
                    {
                        out.push((key, v));
                    }
                }
                h.len = 0;
                h.tombs = 0;
                out
            }
            Repr::Dense(d) => {
                let mut out = Vec::with_capacity(d.len);
                for (i, slot) in d.table.iter_mut().enumerate() {
                    if let Some(Some(v)) = slot.take() {
                        out.push((i as Key, v));
                    }
                }
                d.len = 0;
                out
            }
        }
    }

    /// Copy all live entries out (keys with cloned values), sorted by key —
    /// the canonical form used for serialization and deterministic output.
    pub fn to_sorted_entries(&self) -> Vec<(Key, V)>
    where
        V: Clone,
    {
        let mut v: Vec<(Key, V)> = self.iter().map(|(k, o)| (k, o.clone())).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Build a map from entries (later duplicates overwrite earlier ones).
    /// Pre-sizes from the iterator's length hint (see [`reserve`](Self::reserve)
    /// for why bulk builds must not grow incrementally).
    pub fn from_entries(entries: impl IntoIterator<Item = (Key, V)>) -> Self {
        let iter = entries.into_iter();
        let mut m = RedMap::with_capacity(iter.size_hint().0);
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<V> FromIterator<(Key, V)> for RedMap<V> {
    fn from_iter<I: IntoIterator<Item = (Key, V)>>(iter: I) -> Self {
        Self::from_entries(iter)
    }
}

impl<V> Extend<(Key, V)> for RedMap<V> {
    /// Pre-sizes from the iterator's length hint before inserting, for the
    /// same reason as [`RedMap::reserve`]: extending with drain-order
    /// entries through incremental growth hits the folded-ascending-order
    /// quadratic pathology.
    fn extend<I: IntoIterator<Item = (Key, V)>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        self.reserve(iter.size_hint().0);
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn empty_map_behaves() {
        let m: RedMap<u32> = RedMap::new();
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
        assert_eq!(m.get(0), None);
        assert!(!m.contains_key(7));
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = RedMap::new();
        assert_eq!(m.insert(3, "three"), None);
        assert_eq!(m.insert(3, "THREE"), Some("three"));
        assert_eq!(m.get(3), Some(&"THREE"));
        assert_eq!(m.remove(3), Some("THREE"));
        assert_eq!(m.remove(3), None);
        assert!(m.is_empty());
    }

    #[test]
    fn slot_mut_creates_then_fills() {
        let mut m: RedMap<u64> = RedMap::new();
        let slot = m.slot_mut(5);
        assert!(slot.is_none());
        *slot = Some(42);
        assert_eq!(m.get(5), Some(&42));
        assert_eq!(m.len(), 1);
        // Second access sees the value.
        assert_eq!(m.slot_mut(5).unwrap(), 42);
    }

    #[test]
    fn negative_and_extreme_keys_work() {
        let mut m = RedMap::new();
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            m.insert(k, k as i128 * 2);
        }
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(m.get(k), Some(&(k as i128 * 2)));
        }
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = RedMap::new();
        for k in 0..10_000i64 {
            m.insert(k, k * k);
        }
        assert_eq!(m.len(), 10_000);
        for k in (0..10_000i64).step_by(97) {
            assert_eq!(m.get(k), Some(&(k * k)));
        }
    }

    #[test]
    fn tombstone_churn_does_not_lose_entries() {
        let mut m = RedMap::with_capacity(8);
        // Insert/remove the same small working set far more times than the
        // capacity — exercises tombstone reuse and same-size rehash.
        for round in 0..1000i64 {
            m.insert(round % 7, round);
            if round % 3 == 0 {
                m.remove((round + 1) % 7);
            }
        }
        assert!(m.len() <= 7);
        for (k, v) in m.iter() {
            assert_eq!(k, v % 7);
        }
    }

    #[test]
    fn drain_empties_and_returns_everything() {
        let mut m = RedMap::new();
        for k in 0..100 {
            m.insert(k, k);
        }
        let mut drained = m.drain_entries();
        drained.sort_unstable();
        assert_eq!(drained, (0..100).map(|k| (k, k)).collect::<Vec<_>>());
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
        // Map is reusable after drain.
        m.insert(5, 5);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn reserve_preserves_entries_and_prevents_growth() {
        let mut m: RedMap<i64> = RedMap::new();
        for k in 0..100 {
            m.insert(k, k * 2);
        }
        m.reserve(10_000);
        // All pre-reserve entries survive the rehash.
        for k in 0..100 {
            assert_eq!(m.get(k), Some(&(k * 2)));
        }
        // Filling to the reserved size must not lose anything either.
        for k in 100..10_100 {
            m.insert(k, k * 2);
        }
        assert_eq!(m.len(), 10_100);
        assert_eq!(m.get(9_999), Some(&(2 * 9_999)));
    }

    #[test]
    fn drain_order_reinsert_is_not_quadratic() {
        // Regression test for the folded-ascending-order pathology: drain a
        // large map in slot order and reinsert through the pre-sizing path.
        // Sized so the unfixed code path took seconds while this takes
        // milliseconds; a generous wall-clock bound keeps the test robust
        // while still catching a quadratic regression.
        let n = 393_216i64;
        let mut src: RedMap<u64> = RedMap::new();
        for k in 0..n {
            src.insert(k, 1);
        }
        let entries = src.drain_entries();
        let started = std::time::Instant::now();
        let mut dst: RedMap<u64> = RedMap::new();
        dst.reserve(entries.len());
        for (k, v) in entries {
            dst.insert(k, v);
        }
        assert_eq!(dst.len(), n as usize);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "drain-order reinsert took {:?} — quadratic clustering is back",
            started.elapsed()
        );
    }

    #[test]
    fn sorted_entries_are_sorted() {
        let m: RedMap<i64> = RedMap::from_entries([(5, 50), (1, 10), (3, 30)]);
        assert_eq!(m.to_sorted_entries(), vec![(1, 10), (3, 30), (5, 50)]);
    }

    #[test]
    fn iter_mut_updates_in_place() {
        let mut m: RedMap<i64> = RedMap::from_entries([(1, 1), (2, 2)]);
        for (_, v) in m.iter_mut() {
            *v *= 10;
        }
        assert_eq!(m.get(1), Some(&10));
        assert_eq!(m.get(2), Some(&20));
    }

    #[test]
    fn clear_keeps_allocation_and_resets() {
        let mut m = RedMap::with_capacity(100);
        for k in 0..50 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(10), None);
        m.insert(1, 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn extend_and_collect() {
        let mut m: RedMap<u8> = (0..5).map(|k| (k, k as u8)).collect();
        m.extend([(10, 10u8), (11, 11)]);
        assert_eq!(m.len(), 7);
    }

    #[test]
    fn with_capacity_agrees_with_reserve_on_sizing() {
        for n in [0usize, 1, 7, 14, 100, 1000, 100_000] {
            let pre: RedMap<u64> = RedMap::with_capacity(n);
            let mut post: RedMap<u64> = RedMap::new();
            post.reserve(n);
            assert_eq!(pre.capacity(), post.capacity(), "n = {n}");
        }
    }

    #[test]
    fn with_capacity_holds_n_entries_without_rehash() {
        for n in [1usize, 14, 100, 1000] {
            let mut m: RedMap<i64> = RedMap::with_capacity(n);
            let cap = m.capacity();
            for k in 0..n as i64 {
                m.insert(k, k);
            }
            assert_eq!(m.capacity(), cap, "rehashed while filling to n = {n}");
        }
    }

    #[test]
    fn extend_with_drain_order_entries_is_not_quadratic() {
        // Same pathology as `drain_order_reinsert_is_not_quadratic`, but
        // through the `Extend` impl, which must pre-reserve from the
        // iterator's length hint.
        let n = 393_216i64;
        let mut src: RedMap<u64> = RedMap::new();
        for k in 0..n {
            src.insert(k, 1);
        }
        let entries = src.drain_entries();
        let started = std::time::Instant::now();
        let mut dst: RedMap<u64> = RedMap::new();
        dst.extend(entries);
        assert_eq!(dst.len(), n as usize);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "drain-order extend took {:?} — Extend is not pre-reserving",
            started.elapsed()
        );
    }

    #[test]
    fn dense_basic_roundtrip() {
        let mut m: RedMap<u32> = RedMap::with_key_bound(64);
        assert!(m.is_dense());
        assert_eq!(m.capacity(), 64);
        assert_eq!(m.insert(3, 30), None);
        assert_eq!(m.insert(3, 33), Some(30));
        assert_eq!(m.get(3), Some(&33));
        assert_eq!(m.remove(3), Some(33));
        assert_eq!(m.remove(3), None);
        assert!(m.is_empty());
        assert!(m.is_dense(), "in-bound ops must not spill");
    }

    #[test]
    fn dense_transient_slot_matches_hash_semantics() {
        let mut m: RedMap<u64> = RedMap::with_key_bound(16);
        let slot = m.slot_mut(5);
        assert!(slot.is_none());
        // Transient slot: counted, contained, but yields no value — exactly
        // like the hash backend's `Full { value: None }`.
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(5));
        assert_eq!(m.get(5), None);
        assert_eq!(m.iter().count(), 0);
        *m.slot_mut(5) = Some(42);
        assert_eq!(m.get(5), Some(&42));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn dense_out_of_bound_reads_do_not_spill() {
        let mut m: RedMap<i64> = RedMap::with_key_bound(8);
        m.insert(2, 20);
        assert_eq!(m.get(100), None);
        assert_eq!(m.get(-1), None);
        assert!(!m.contains_key(100));
        assert_eq!(m.remove(100), None);
        assert_eq!(m.remove(-5), None);
        assert!(m.is_dense());
        assert_eq!(m.get(2), Some(&20));
    }

    #[test]
    fn dense_spills_on_out_of_bound_insert_preserving_entries() {
        let mut m: RedMap<i64> = RedMap::with_key_bound(8);
        for k in 0..8 {
            m.insert(k, k * 10);
        }
        // Transient slot must survive the spill too.
        m.remove(7);
        let _ = m.slot_mut(6).take();
        assert!(m.is_dense());
        m.insert(i64::MIN, -1);
        m.insert(i64::MAX, 1);
        m.insert(100, 1000);
        assert!(!m.is_dense());
        for k in 0..6 {
            assert_eq!(m.get(k), Some(&(k * 10)), "entry {k} lost in spill");
        }
        assert!(m.contains_key(6), "transient slot lost in spill");
        assert_eq!(m.get(6), None);
        assert!(!m.contains_key(7));
        assert_eq!(m.get(i64::MIN), Some(&-1));
        assert_eq!(m.get(i64::MAX), Some(&1));
        assert_eq!(m.get(100), Some(&1000));
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn dense_iter_and_drain_are_key_ordered() {
        let mut m: RedMap<i64> = RedMap::with_key_bound(32);
        for k in [9, 3, 27, 0] {
            m.insert(k, k);
        }
        let keys: Vec<i64> = m.keys().collect();
        assert_eq!(keys, vec![0, 3, 9, 27]);
        assert_eq!(m.to_sorted_entries(), vec![(0, 0), (3, 3), (9, 9), (27, 27)]);
        let drained = m.drain_entries();
        assert_eq!(drained, vec![(0, 0), (3, 3), (9, 9), (27, 27)]);
        assert!(m.is_empty());
        assert!(m.is_dense(), "drain keeps the dense backend for reuse");
    }

    #[test]
    fn dense_clear_keeps_backend_and_allocation() {
        let mut m: RedMap<u8> = RedMap::with_key_bound(16);
        m.insert(1, 1);
        m.insert(15, 15);
        m.clear();
        assert!(m.is_empty());
        assert!(m.is_dense());
        assert_eq!(m.capacity(), 16);
        assert_eq!(m.get(1), None);
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn huge_or_zero_key_bound_falls_back_to_hash() {
        let a: RedMap<u8> = RedMap::with_key_bound(0);
        assert!(!a.is_dense());
        let b: RedMap<u8> = RedMap::with_key_bound(DENSE_KEY_CAP + 1);
        assert!(!b.is_dense());
        let c: RedMap<u8> = RedMap::with_key_bound(DENSE_KEY_CAP);
        assert!(c.is_dense());
    }

    #[test]
    fn retained_bytes_tracks_table_allocation() {
        let empty: RedMap<u64> = RedMap::new();
        assert_eq!(empty.retained_bytes(), 0);
        let hash: RedMap<u64> = RedMap::with_capacity(1000);
        assert!(hash.retained_bytes() >= 1024 * std::mem::size_of::<usize>());
        let dense: RedMap<u64> = RedMap::with_key_bound(1000);
        assert!(dense.retained_bytes() >= 1000 * std::mem::size_of::<Option<Option<u64>>>());
    }

    proptest! {
        /// Command-sequence equivalence against std HashMap.
        #[test]
        fn behaves_like_std_hashmap(ops in proptest::collection::vec(
            (0u8..4, -50i64..50, any::<u32>()), 0..400))
        {
            let mut ours: RedMap<u32> = RedMap::new();
            let mut model: HashMap<i64, u32> = HashMap::new();
            for (op, key, val) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(ours.insert(key, val), model.insert(key, val));
                    }
                    1 => {
                        prop_assert_eq!(ours.remove(key), model.remove(&key));
                    }
                    2 => {
                        prop_assert_eq!(ours.get(key), model.get(&key));
                    }
                    _ => {
                        prop_assert_eq!(ours.contains_key(key), model.contains_key(&key));
                    }
                }
                prop_assert_eq!(ours.len(), model.len());
            }
            let mut a = ours.to_sorted_entries();
            let mut b: Vec<(i64, u32)> = model.into_iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }

        /// The dense backend under the same command sequences — keys mostly
        /// inside the bound, with enough strays (negative and above-bound)
        /// to force mid-sequence spills.
        #[test]
        fn dense_behaves_like_std_hashmap(ops in proptest::collection::vec(
            (0u8..4, -10i64..80, any::<u32>()), 0..400))
        {
            let mut ours: RedMap<u32> = RedMap::with_key_bound(40);
            let mut model: HashMap<i64, u32> = HashMap::new();
            for (op, key, val) in ops {
                match op {
                    0 => {
                        prop_assert_eq!(ours.insert(key, val), model.insert(key, val));
                    }
                    1 => {
                        prop_assert_eq!(ours.remove(key), model.remove(&key));
                    }
                    2 => {
                        prop_assert_eq!(ours.get(key), model.get(&key));
                    }
                    _ => {
                        prop_assert_eq!(ours.contains_key(key), model.contains_key(&key));
                    }
                }
                prop_assert_eq!(ours.len(), model.len());
            }
            let mut a = ours.to_sorted_entries();
            let mut b: Vec<(i64, u32)> = model.into_iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn drain_matches_iter(keys in proptest::collection::hash_set(-1000i64..1000, 0..200)) {
            let mut m: RedMap<i64> = keys.iter().map(|&k| (k, k * 3)).collect();
            let via_iter: std::collections::BTreeMap<i64, i64> =
                m.iter().map(|(k, &v)| (k, v)).collect();
            let via_drain: std::collections::BTreeMap<i64, i64> =
                m.drain_entries().into_iter().collect();
            prop_assert_eq!(via_iter, via_drain);
        }
    }
}
