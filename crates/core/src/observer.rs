//! The measurement seam of the execution core.
//!
//! Every phase of [`crate::Scheduler::execute`] reports through a
//! [`PhaseObserver`] instead of mutating a stats struct inline. Two sinks
//! ship with the runtime — [`RunStats`] (what
//! [`crate::Scheduler::last_stats`] returns when stats collection is on)
//! and [`NoopObserver`] (stats off) — and a future tracing/metrics layer
//! plugs in through [`crate::Scheduler::execute_with`] without touching
//! the hot path.
//!
//! **Gating invariant:** when [`PhaseObserver::enabled`] returns `false`
//! the core skips *every* measurement — no `Instant::now()` calls, no
//! serialized-size computation, no transport-byte counter reads — not just
//! the reporting. [`Stopwatch`] encodes that rule for timers.

use std::time::{Duration, Instant};

/// Sink for per-phase measurements from one [`crate::Scheduler::execute`]
/// call.
///
/// Callbacks arrive on the driver thread, in phase order, once per
/// iteration of the step: every worker's [`split_done`](Self::split_done),
/// then [`local_merge_done`](Self::local_merge_done), then (distributed
/// steps only) [`global_combine_done`](Self::global_combine_done), then
/// [`iter_done`](Self::iter_done).
pub trait PhaseObserver {
    /// Whether the core should measure at all. When `false`, the scheduler
    /// makes no timing or byte-count measurements and the remaining
    /// callbacks are never invoked (see the module-level gating invariant).
    fn enabled(&self) -> bool {
        true
    }

    /// Worker `tid` finished its reduction split after `busy` time.
    fn split_done(&mut self, tid: usize, busy: Duration);

    /// The per-thread partial maps were merged into the step's delta map
    /// (layer 1 of the combination pipeline).
    fn local_merge_done(&mut self, busy: Duration);

    /// Global combination finished. `payload_bytes` is the serialized size
    /// of this rank's delta entries (the paper-facing quantity);
    /// `wire_bytes` is what the transport actually moved.
    fn global_combine_done(&mut self, payload_bytes: u64, wire_bytes: u64, busy: Duration);

    /// One iteration completed; `combine_busy` spans local merge through
    /// `post_combine`.
    fn iter_done(&mut self, combine_busy: Duration);

    /// A checkpoint of the combined reduction object was written (`bytes`
    /// on disk, `busy` spent serializing + writing). Reported by the
    /// fault-tolerance layer's recovery driver, not by `execute` itself —
    /// hence the default no-op, so observers that predate checkpointing
    /// keep compiling.
    fn checkpoint_done(&mut self, bytes: u64, busy: Duration) {
        let _ = (bytes, busy);
    }

    /// One staging pass copied `bytes` of simulation output into the
    /// staging buffer after `busy` time. Reported once per step in copy
    /// mode — by `execute` itself, or by the service driver's shared scan
    /// (which stages once no matter how many jobs consume the step, the
    /// basis of the shared-scan byte assertion). Zero-copy steps never
    /// report. Default no-op for pre-service observers.
    fn staged_done(&mut self, bytes: u64, busy: Duration) {
        let _ = (bytes, busy);
    }

    /// The service driver finished running submitted job `job` against one
    /// time-step: `result_bytes` of wire-serialized output were delivered
    /// to the job's subscriber, after `busy` execution time. Reported by
    /// `smart-serve`, never by `execute` itself. Default no-op.
    fn job_step_done(&mut self, job: u64, result_bytes: u64, busy: Duration) {
        let _ = (job, result_bytes, busy);
    }

    /// The spilling shuffle drained reduction maps to disk: `runs` sorted
    /// runs holding `bytes` on disk were written after `busy` time spent
    /// serializing, framing, and committing (merge time is part of the
    /// combine phase, not this lane). Reported once per iteration that
    /// spilled; resident iterations never report. Default no-op for
    /// pre-spill observers.
    fn spill_done(&mut self, runs: usize, bytes: u64, busy: Duration) {
        let _ = (runs, bytes, busy);
    }
}

/// The stats-off sink: reports nothing, and — because
/// [`enabled`](PhaseObserver::enabled) is `false` — suppresses every
/// measurement in the core.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl PhaseObserver for NoopObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn split_done(&mut self, _tid: usize, _busy: Duration) {}

    fn local_merge_done(&mut self, _busy: Duration) {}

    fn global_combine_done(&mut self, _payload_bytes: u64, _wire_bytes: u64, _busy: Duration) {}

    fn iter_done(&mut self, _combine_busy: Duration) {}
}

/// A timer that honours the observer gating invariant: constructed
/// disabled, it never reads the clock and reports [`Duration::ZERO`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Start a timer, or a zero-cost dummy when `enabled` is false.
    pub(crate) fn new(enabled: bool) -> Self {
        Stopwatch(enabled.then(Instant::now))
    }

    /// Elapsed time since construction (`ZERO` when disabled).
    pub(crate) fn elapsed(&self) -> Duration {
        self.0.map(|started| started.elapsed()).unwrap_or_default()
    }
}

/// Per-job accounting lane inside [`RunStats`]: what one submitted job
/// consumed across every time-step the service driver ran it against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobLane {
    /// The job id assigned by the service registry.
    pub job: u64,
    /// Time-steps this job executed against.
    pub steps: usize,
    /// Wire-serialized result bytes delivered to the job's subscriber.
    pub result_bytes: u64,
    /// Busy time spent executing this job's reductions.
    pub busy: Duration,
}

/// Phase timings and volumes from the most recent `run*`/`execute` call —
/// the default [`PhaseObserver`] sink.
///
/// Every duration is *busy* time measured inside the phase, so the numbers
/// compose on any host: modeled parallel step time =
/// `max(split_busy) + combine_busy` plus a communication model applied to
/// `global_bytes` (this is how the benchmark harness reproduces the paper's
/// scaling figures on hosts with fewer cores than the experiment needs —
/// see DESIGN.md substitutions).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-worker reduction busy time, summed over iterations.
    pub split_busy: Vec<Duration>,
    /// Local + global combination busy time (merge work), all iterations.
    pub combine_busy: Duration,
    /// Portion of [`combine_busy`](Self::combine_busy) spent merging the
    /// per-thread partial maps (layer 1 of the combination pipeline), all
    /// iterations.
    pub local_merge_busy: Duration,
    /// Portion of [`combine_busy`](Self::combine_busy) spent in the global
    /// combination collective (layer 2), all iterations. Zero for
    /// single-rank runs.
    pub global_comm_busy: Duration,
    /// Bytes of serialized combination-map entries shipped per rank during
    /// global combination, all iterations.
    pub global_bytes: u64,
    /// Actual transport bytes this rank sent during global combination, all
    /// iterations (from the communicator's sent-byte counter). For
    /// [`crate::CombineStrategy::Sharded`] this stays ≤ ~2× the serialized
    /// global map; for the tree allreduce it grows with log(ranks).
    pub comm_bytes: u64,
    /// Iterations executed.
    pub iters: usize,
    /// In-transit mode only: producer-side busy time inside streaming sends
    /// (serialization + credit waits). Zero for in-situ placements.
    pub transit_send_busy: Duration,
    /// In-transit mode only: stager-side busy time receiving and decoding
    /// streamed chunks. Zero for in-situ placements.
    pub transit_recv_busy: Duration,
    /// In-transit mode only: wire bytes streamed from producers to this
    /// stager. Zero for in-situ placements.
    pub transit_bytes: u64,
    /// Checkpointing only: busy time spent serializing and writing
    /// reduction-object snapshots. Zero when checkpointing is off.
    pub ckpt_busy: Duration,
    /// Checkpointing only: bytes written to the checkpoint store.
    pub ckpt_bytes: u64,
    /// Checkpointing only: snapshots written.
    pub ckpts: usize,
    /// Bytes copied into the staging buffer, all steps (copy mode and the
    /// service tier's shared scan only; zero-copy steps contribute nothing).
    pub staged_bytes: u64,
    /// Busy time spent inside the staging copy, all steps.
    pub stage_busy: Duration,
    /// Service tier only: per-job accounting lanes, sorted by job id. Empty
    /// for plain `execute` runs.
    pub jobs: Vec<JobLane>,
    /// Spilling shuffle only: sorted runs written to disk. Zero when the
    /// whole run stayed resident.
    pub spill_runs: usize,
    /// Spilling shuffle only: bytes of committed runs on disk.
    pub spill_bytes: u64,
    /// Spilling shuffle only: busy time serializing and committing runs
    /// (stream-merge time counts toward the combine phase instead).
    pub spill_busy: Duration,
}

impl RunStats {
    /// The slowest worker's reduction busy time.
    pub fn max_split_busy(&self) -> Duration {
        self.split_busy.iter().copied().max().unwrap_or_default()
    }

    /// Total busy time across all workers and phases.
    pub fn total_busy(&self) -> Duration {
        self.split_busy.iter().sum::<Duration>() + self.combine_busy
    }

    /// Accumulate another run's stats into this one (element-wise for the
    /// per-worker vector). The in-transit stager calls the scheduler once
    /// per time-step and absorbs each step's stats into a whole-run total.
    pub fn absorb(&mut self, other: &RunStats) {
        if self.split_busy.len() < other.split_busy.len() {
            self.split_busy.resize(other.split_busy.len(), Duration::ZERO);
        }
        for (acc, &busy) in self.split_busy.iter_mut().zip(&other.split_busy) {
            *acc += busy;
        }
        self.combine_busy += other.combine_busy;
        self.local_merge_busy += other.local_merge_busy;
        self.global_comm_busy += other.global_comm_busy;
        self.global_bytes += other.global_bytes;
        self.comm_bytes += other.comm_bytes;
        self.iters += other.iters;
        self.transit_send_busy += other.transit_send_busy;
        self.transit_recv_busy += other.transit_recv_busy;
        self.transit_bytes += other.transit_bytes;
        self.ckpt_busy += other.ckpt_busy;
        self.ckpt_bytes += other.ckpt_bytes;
        self.ckpts += other.ckpts;
        self.staged_bytes += other.staged_bytes;
        self.stage_busy += other.stage_busy;
        self.spill_runs += other.spill_runs;
        self.spill_bytes += other.spill_bytes;
        self.spill_busy += other.spill_busy;
        for lane in &other.jobs {
            self.lane_mut(lane.job).merge(lane);
        }
    }

    /// The accounting lane for `job`, created (sorted by id) on first use.
    fn lane_mut(&mut self, job: u64) -> &mut JobLane {
        let at = match self.jobs.binary_search_by_key(&job, |l| l.job) {
            Ok(at) => at,
            Err(at) => {
                self.jobs.insert(at, JobLane { job, ..JobLane::default() });
                at
            }
        };
        // PANIC-FREE: binary_search returned an occupied index, or insert just made `at` occupied.
        &mut self.jobs[at]
    }
}

impl JobLane {
    fn merge(&mut self, other: &JobLane) {
        self.steps += other.steps;
        self.result_bytes += other.result_bytes;
        self.busy += other.busy;
    }
}

impl PhaseObserver for RunStats {
    fn split_done(&mut self, tid: usize, busy: Duration) {
        if self.split_busy.len() <= tid {
            self.split_busy.resize(tid + 1, Duration::ZERO);
        }
        // PANIC-FREE: the resize above guarantees tid < split_busy.len().
        self.split_busy[tid] += busy;
    }

    fn local_merge_done(&mut self, busy: Duration) {
        self.local_merge_busy += busy;
    }

    fn global_combine_done(&mut self, payload_bytes: u64, wire_bytes: u64, busy: Duration) {
        self.global_bytes += payload_bytes;
        self.comm_bytes += wire_bytes;
        self.global_comm_busy += busy;
    }

    fn iter_done(&mut self, combine_busy: Duration) {
        self.combine_busy += combine_busy;
        self.iters += 1;
    }

    fn checkpoint_done(&mut self, bytes: u64, busy: Duration) {
        self.ckpt_busy += busy;
        self.ckpt_bytes += bytes;
        self.ckpts += 1;
    }

    fn staged_done(&mut self, bytes: u64, busy: Duration) {
        self.staged_bytes += bytes;
        self.stage_busy += busy;
    }

    fn job_step_done(&mut self, job: u64, result_bytes: u64, busy: Duration) {
        let lane = self.lane_mut(job);
        lane.steps += 1;
        lane.result_bytes += result_bytes;
        lane.busy += busy;
    }

    fn spill_done(&mut self, runs: usize, bytes: u64, busy: Duration) {
        self.spill_runs += runs;
        self.spill_bytes += bytes;
        self.spill_busy += busy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_sink_accumulates_phases() {
        let mut stats = RunStats::default();
        assert!(stats.enabled());
        stats.split_done(1, Duration::from_millis(5));
        stats.split_done(0, Duration::from_millis(3));
        stats.split_done(1, Duration::from_millis(2));
        assert_eq!(stats.split_busy.len(), 2);
        assert_eq!(stats.max_split_busy(), Duration::from_millis(7));
        stats.local_merge_done(Duration::from_millis(1));
        stats.global_combine_done(100, 250, Duration::from_millis(4));
        stats.iter_done(Duration::from_millis(6));
        assert_eq!(stats.local_merge_busy, Duration::from_millis(1));
        assert_eq!((stats.global_bytes, stats.comm_bytes), (100, 250));
        assert_eq!(stats.global_comm_busy, Duration::from_millis(4));
        assert_eq!(stats.combine_busy, Duration::from_millis(6));
        assert_eq!(stats.iters, 1);
    }

    #[test]
    fn noop_sink_is_disabled() {
        assert!(!NoopObserver.enabled());
    }

    #[test]
    fn disabled_stopwatch_reports_zero() {
        let sw = Stopwatch::new(false);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(sw.elapsed(), Duration::ZERO);
        let sw = Stopwatch::new(true);
        assert!(sw.elapsed() <= Duration::from_secs(1));
    }

    #[test]
    fn absorb_accumulates_elementwise() {
        let mut total = RunStats::default();
        let mut step = RunStats::default();
        step.split_done(0, Duration::from_millis(1));
        step.iter_done(Duration::from_millis(2));
        total.absorb(&step);
        total.absorb(&step);
        assert_eq!(total.split_busy[0], Duration::from_millis(2));
        assert_eq!(total.iters, 2);
        assert_eq!(total.combine_busy, Duration::from_millis(4));
    }

    #[test]
    fn staging_and_job_lanes_accumulate() {
        let mut stats = RunStats::default();
        stats.staged_done(1024, Duration::from_millis(2));
        stats.staged_done(1024, Duration::from_millis(3));
        assert_eq!(stats.staged_bytes, 2048);
        assert_eq!(stats.stage_busy, Duration::from_millis(5));
        // Out-of-order job ids land in sorted lanes.
        stats.job_step_done(7, 100, Duration::from_millis(1));
        stats.job_step_done(2, 50, Duration::from_millis(4));
        stats.job_step_done(7, 100, Duration::from_millis(1));
        assert_eq!(stats.jobs.len(), 2);
        assert_eq!(
            stats.jobs[0],
            JobLane { job: 2, steps: 1, result_bytes: 50, busy: Duration::from_millis(4) }
        );
        assert_eq!(
            stats.jobs[1],
            JobLane { job: 7, steps: 2, result_bytes: 200, busy: Duration::from_millis(2) }
        );
        // The noop sink accepts both callbacks silently (default bodies).
        NoopObserver.staged_done(1, Duration::ZERO);
        NoopObserver.job_step_done(1, 1, Duration::ZERO);
    }

    #[test]
    fn absorb_merges_job_lanes_by_id() {
        let mut step = RunStats::default();
        step.staged_done(512, Duration::from_millis(1));
        step.job_step_done(3, 10, Duration::from_millis(2));
        step.job_step_done(5, 20, Duration::from_millis(3));
        let mut total = RunStats::default();
        total.job_step_done(5, 1, Duration::from_millis(1));
        total.absorb(&step);
        total.absorb(&step);
        assert_eq!(total.staged_bytes, 1024);
        assert_eq!(total.jobs.len(), 2);
        assert_eq!(
            (total.jobs[0].job, total.jobs[0].steps, total.jobs[0].result_bytes),
            (3, 2, 20)
        );
        assert_eq!(
            (total.jobs[1].job, total.jobs[1].steps, total.jobs[1].result_bytes),
            (5, 3, 41)
        );
    }

    #[test]
    fn spill_measurements_accumulate_and_absorb() {
        let mut stats = RunStats::default();
        stats.spill_done(2, 4096, Duration::from_millis(5));
        stats.spill_done(1, 1024, Duration::from_millis(2));
        assert_eq!(stats.spill_runs, 3);
        assert_eq!(stats.spill_bytes, 5120);
        assert_eq!(stats.spill_busy, Duration::from_millis(7));
        let mut total = RunStats::default();
        total.absorb(&stats);
        total.absorb(&stats);
        assert_eq!((total.spill_runs, total.spill_bytes), (6, 10240));
        // The noop sink accepts the callback silently (default body).
        NoopObserver.spill_done(1, 1, Duration::ZERO);
    }

    #[test]
    fn checkpoint_measurements_accumulate_and_absorb() {
        let mut stats = RunStats::default();
        stats.checkpoint_done(64, Duration::from_millis(3));
        stats.checkpoint_done(32, Duration::from_millis(1));
        assert_eq!(stats.ckpts, 2);
        assert_eq!(stats.ckpt_bytes, 96);
        assert_eq!(stats.ckpt_busy, Duration::from_millis(4));
        let mut total = RunStats::default();
        total.absorb(&stats);
        assert_eq!((total.ckpts, total.ckpt_bytes), (2, 96));
        // The noop sink accepts the callback silently (default body).
        NoopObserver.checkpoint_done(1, Duration::ZERO);
    }
}
