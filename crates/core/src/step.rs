//! One step of the Smart data-processing mechanism, as a value.
//!
//! The paper exposes one mechanism (Algorithm 1 plus the Algorithm 2
//! early-emission extension) through many placement-specific entry points:
//! single- vs multi-key, single-rank vs distributed, one partition vs an
//! in-transit stager's several. [`StepSpec`] collapses that axis product
//! into a value — *what* to process this step — consumed by the single
//! execution core [`crate::Scheduler::execute`]. Every legacy `run*` entry
//! point is a one-line delegation that builds a `StepSpec`.

use smart_comm::Communicator;

/// Key mode of a step: `gen_key` (`run`) or `gen_keys` (`run2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyMode {
    /// One key per chunk ([`crate::Analytics::gen_key`], the `run` family).
    #[default]
    Single,
    /// Multiple keys per chunk ([`crate::Analytics::gen_keys`], the `run2`
    /// family) — the usual choice for window-based analytics.
    Multi,
}

/// Everything that varies between the `run*` entry points, as one value:
/// the `(global_offset, data)` partitions processed this step, the key
/// mode, and an optional communicator for global combination.
///
/// The ordinary in-situ paths pass exactly one partition; an in-transit
/// stager passes one per producer it serves (possibly zero once streams
/// end raggedly — an empty `parts` still participates in the collectives,
/// which is what keeps a drained stager from deadlocking its peers).
///
/// ```
/// # use smart_core::{Analytics, Chunk, ComMap, Key, RedObj, SchedArgs, Scheduler, StepSpec};
/// # use serde::{Serialize, Deserialize};
/// # #[derive(Clone, Serialize, Deserialize, Default)]
/// # struct Count { n: u64 }
/// # impl RedObj for Count {}
/// # struct Counter;
/// # impl Analytics for Counter {
/// #     type In = f64; type Red = Count; type Out = u64; type Extra = ();
/// #     fn accumulate(&self, _c: &Chunk, _d: &[f64], _k: Key, o: &mut Option<Count>) {
/// #         o.get_or_insert_with(Count::default).n += 1;
/// #     }
/// #     fn merge(&self, r: &Count, c: &mut Count) { c.n += r.n; }
/// #     fn convert(&self, o: &Count, out: &mut u64) { *out = o.n; }
/// # }
/// let pool = smart_pool::shared_pool(2).unwrap();
/// let mut s = Scheduler::new(Counter, SchedArgs::new(2, 1), pool).unwrap();
/// let data = [1.0, 2.0, 3.0, 4.0];
/// let mut out = [0u64];
/// // Equivalent to `s.run(&data, &mut out)`:
/// s.execute(StepSpec::new(&[(0, &data)]), &mut out).unwrap();
/// assert_eq!(out, [4]);
/// ```
pub struct StepSpec<'a, In> {
    pub(crate) parts: &'a [(usize, &'a [In])],
    pub(crate) key_mode: KeyMode,
    pub(crate) comm: Option<&'a mut Communicator>,
}

impl<'a, In> StepSpec<'a, In> {
    /// A single-key, rank-local step over `parts` — each entry is a
    /// `(global_offset, data)` partition.
    pub fn new(parts: &'a [(usize, &'a [In])]) -> Self {
        StepSpec { parts, key_mode: KeyMode::Single, comm: None }
    }

    /// Select the key mode (default [`KeyMode::Single`]).
    pub fn with_key_mode(mut self, key_mode: KeyMode) -> Self {
        self.key_mode = key_mode;
        self
    }

    /// Attach a communicator for global combination (`None` keeps the step
    /// rank-local). Taking an `Option` lets local/distributed entry points
    /// share one delegation line.
    pub fn with_comm(mut self, comm: Option<&'a mut Communicator>) -> Self {
        self.comm = comm;
        self
    }

    /// The step's `(global_offset, data)` partitions.
    pub fn parts(&self) -> &[(usize, &'a [In])] {
        self.parts
    }

    /// The step's key mode.
    pub fn key_mode(&self) -> KeyMode {
        self.key_mode
    }

    /// Whether the step combines globally across ranks.
    pub fn is_distributed(&self) -> bool {
        self.comm.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_local_single_key() {
        let data = [1.0f64, 2.0];
        let parts = [(0usize, &data[..])];
        let spec = StepSpec::new(&parts);
        assert_eq!(spec.key_mode(), KeyMode::Single);
        assert!(!spec.is_distributed());
        assert_eq!(spec.parts().len(), 1);
    }

    #[test]
    fn builder_sets_key_mode() {
        let data = [0u32; 4];
        let parts = [(8usize, &data[..])];
        let spec = StepSpec::new(&parts).with_key_mode(KeyMode::Multi);
        assert_eq!(spec.key_mode(), KeyMode::Multi);
        assert_eq!(spec.parts()[0].0, 8);
    }
}
