//! The Smart scheduler: Algorithm 1 (the `run`/`run2` data-processing
//! mechanism) and Algorithm 2 (early emission) of the paper.
//!
//! The scheduler is a thin orchestrator over the layered execution core:
//! one step is described by a [`StepSpec`] value and executed by
//! [`Scheduler::execute`], which drives the phase modules in order —
//! [`crate::stage`] (optional input copy), [`crate::reduce`] (per-thread
//! reduction + early emission), [`crate::combine`] (local merge, then
//! global merge across ranks) — each reporting through a
//! [`PhaseObserver`]. The `run*` family below is the paper's Table 1
//! surface, kept as one-line delegations onto `execute`.

use crate::api::{Analytics, ComMap, Key};
use crate::args::SchedArgs;
use crate::combine::{self, CombineStrategy};
use crate::error::{SmartError, SmartResult};
use crate::observer::{NoopObserver, PhaseObserver, RunStats, Stopwatch};
use crate::redmap::RedMap;
use crate::reduce;
use crate::shared_slice::SharedSlice;
use crate::spill;
use crate::stage;
use crate::step::{KeyMode, StepSpec};
use smart_comm::Communicator;
use smart_pool::SharedPool;
use smart_spill::{RunError, SpillStore};

/// Live out-of-core state of one scheduler: a process-private scratch run
/// store, the current on-disk combination run (when combination state has
/// spilled), and naming counters. Created lazily on the first spilled
/// step; the store is removed when the scheduler drops.
struct SpillRt {
    store: SpillStore,
    /// Name of the combination run holding the persistent map, when it
    /// lives on disk instead of in `com_map`.
    com_run: Option<String>,
    /// Next combination-run sequence number.
    com_seq: u64,
    /// Per-iteration epoch counter embedded in step-run names.
    epoch: u64,
}

/// Resumable scheduler state: the combination entries in canonical
/// key-sorted order plus the step cursor. See [`Scheduler::snapshot`].
pub type Snapshot<R> = (Vec<(Key, R)>, usize);

/// Parse a byte-count budget from the environment; unset, empty,
/// non-numeric, or zero all mean "no budget".
fn env_budget(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse::<usize>().ok()).filter(|&b| b > 0)
}

/// A Smart analytics job bound to a thread pool.
///
/// In time-sharing mode the scheduler is invoked once per time-step on the
/// simulation's output partition (`run*`). In space-sharing mode it is
/// driven by [`crate::space::SpaceShared`]. The same scheduler instance also
/// runs *offline* analytics unchanged — the paper's point that in-situ and
/// offline code can be identical.
pub struct Scheduler<A: Analytics> {
    analytics: A,
    args: SchedArgs<A::Extra>,
    pool: SharedPool,
    global_combination: bool,
    /// Distribute the combination map into per-thread reduction maps at the
    /// start of each iteration (Algorithm 1 line 6). Required for analytics
    /// whose `accumulate` reads state seeded into the objects (k-means
    /// centroids); wrong for stateless accumulation, where the distributed
    /// copies would be double-counted by the merge. Auto-detected in
    /// [`new`](Self::new) (iterative or extra-data analytics distribute),
    /// overridable with [`set_distribute_map`](Self::set_distribute_map).
    distribute_map: bool,
    combine_strategy: CombineStrategy,
    com_map: ComMap<A::Red>,
    extra_processed: bool,
    /// Reusable buffer for `copy_input` mode (see [`crate::stage`]).
    copy_buf: Vec<A::In>,
    /// Per-(partition, thread) reduction-map shells, kept alive across
    /// steps: cleared — never freed — between steps, so a steady-state
    /// step allocates no maps and each shell's capacity is the high-water
    /// mark of everything it has held (see `reduce::prepare_shells`).
    shells: Vec<RedMap<A::Red>>,
    /// This scheduler's last contribution to the process-wide
    /// retained-map-bytes gauge (see `report_retained`).
    reported_retained: usize,
    /// Force the default per-chunk walk instead of
    /// [`Analytics::reduce_batch`] kernels (ablation knob).
    scalar_reduce: bool,
    /// Honour [`Analytics::key_bound`] with dense direct-indexed shells.
    dense_maps: bool,
    /// Receive global-combination payloads through the validating wire
    /// view ([`Analytics::merge_wire`]) instead of owned decodes.
    wire_view: bool,
    /// Spilling-shuffle budget: when set (and the analytics opts in via
    /// [`Analytics::spill_safe`]), worker reduction maps drain to sorted
    /// on-disk runs instead of growing past it (see [`crate::spill`]).
    spill_budget: Option<usize>,
    /// Hard resident-map budget: exceeding it with spilling disengaged is
    /// a typed [`SmartError::MemBudget`].
    mem_budget: Option<usize>,
    /// Lazily created out-of-core state (scratch store + combination run).
    spill_rt: Option<SpillRt>,
    /// High-water resident reduction+combination map bytes, sampled each
    /// iteration while a budget is set.
    peak_map_bytes: usize,
    steps_run: usize,
    collect_stats: bool,
    last_stats: RunStats,
}

impl<A: Analytics> Scheduler<A> {
    /// Create a scheduler (paper Table 1, runtime function 2).
    pub fn new(analytics: A, args: SchedArgs<A::Extra>, pool: SharedPool) -> SmartResult<Self> {
        if args.num_threads == 0 {
            return Err(SmartError::BadArgs("num_threads must be positive".into()));
        }
        if args.num_threads > pool.size() {
            return Err(SmartError::BadArgs(format!(
                "num_threads {} exceeds pool size {}",
                args.num_threads,
                pool.size()
            )));
        }
        if args.chunk_size == 0 {
            return Err(SmartError::BadArgs("chunk_size must be positive".into()));
        }
        if args.num_iters == 0 {
            return Err(SmartError::BadArgs("num_iters must be positive".into()));
        }
        let distribute_map = args.extra_data.is_some() || args.num_iters > 1;
        Ok(Scheduler {
            analytics,
            args,
            pool,
            global_combination: true,
            distribute_map,
            combine_strategy: CombineStrategy::default(),
            com_map: ComMap::new(),
            extra_processed: false,
            copy_buf: Vec::new(),
            shells: Vec::new(),
            reported_retained: 0,
            scalar_reduce: false,
            dense_maps: true,
            wire_view: !matches!(std::env::var("SMART_WIRE_VIEW"), Ok(v) if v == "0"),
            spill_budget: env_budget("SMART_SPILL_BUDGET"),
            mem_budget: env_budget("SMART_MEM_BUDGET"),
            spill_rt: None,
            peak_map_bytes: 0,
            steps_run: 0,
            collect_stats: false,
            last_stats: RunStats::default(),
        })
    }

    /// Enable per-phase timing collection (see [`RunStats`]).
    ///
    /// **Invariant:** when disabled (the default), the execution core makes
    /// *no* measurements at all — no `Instant::now()` calls, no
    /// serialized-size computation, no transport byte-counter reads — and
    /// [`last_stats`](Self::last_stats) returns an empty [`RunStats`]
    /// (`iters == 0`). Measurement is all-or-nothing: the no-op observer
    /// sink keeps timing overhead out of the hot path entirely rather than
    /// collecting some counters for free (see [`PhaseObserver::enabled`]).
    pub fn set_collect_stats(&mut self, flag: bool) {
        self.collect_stats = flag;
    }

    /// Phase timings from the most recent `run*`/[`execute`](Self::execute)
    /// call (empty unless [`set_collect_stats`](Self::set_collect_stats)
    /// was enabled).
    pub fn last_stats(&self) -> &RunStats {
        &self.last_stats
    }

    /// Enable/disable global combination (paper Table 1, function 3).
    /// Disabled, each rank keeps a local result — the "MapReduce pipeline"
    /// pattern where a preprocessing job's output feeds the next job.
    pub fn set_global_combination(&mut self, flag: bool) {
        self.global_combination = flag;
    }

    /// Override the combination-map distribution rule (see field docs).
    pub fn set_distribute_map(&mut self, flag: bool) {
        self.distribute_map = flag;
    }

    /// Choose how local and global combination execute (see
    /// [`CombineStrategy`]). All strategies produce identical combination
    /// maps; this knob exists for ablation and for falling back to the
    /// paper's serial pipeline.
    pub fn set_combine_strategy(&mut self, strategy: CombineStrategy) {
        self.combine_strategy = strategy;
    }

    /// The active combination strategy.
    pub fn combine_strategy(&self) -> CombineStrategy {
        self.combine_strategy
    }

    /// Force the default per-chunk `gen_key`/`accumulate` walk instead of
    /// any [`Analytics::reduce_batch`] kernel the analytics provides. For
    /// ablation and for pinning down a suspected kernel divergence; kernels
    /// are contract-bound to be bit-identical, so results never change.
    pub fn set_scalar_reduce(&mut self, flag: bool) {
        self.scalar_reduce = flag;
    }

    /// Enable/disable the dense direct-indexed backend for per-thread
    /// reduction maps of analytics that declare a [`Analytics::key_bound`]
    /// (default: enabled). Both backends are observationally identical;
    /// this knob exists for ablation. Takes effect at the next step for
    /// shells that are re-created; call [`drop_shells`](Self::drop_shells)
    /// to apply it immediately.
    pub fn set_dense_maps(&mut self, flag: bool) {
        self.dense_maps = flag;
    }

    /// Enable/disable the zero-copy wire-view receive path of global
    /// combination (default: enabled, unless `SMART_WIRE_VIEW=0`). With it
    /// off, every incoming combination payload is decoded into an owned
    /// entry vector before merging — the reference path the view is
    /// proptested against. Both paths produce bit-identical maps; this
    /// knob exists for ablation.
    pub fn set_wire_view(&mut self, flag: bool) {
        self.wire_view = flag;
    }

    /// Set (or clear) the spilling-shuffle budget, in bytes of resident
    /// reduction-map state (env default: `SMART_SPILL_BUDGET`). With a
    /// budget set and the analytics opted in ([`Analytics::spill_safe`]),
    /// worker shells crossing their share of the budget drain to sorted
    /// on-disk runs and the combination map itself lives on disk, streamed
    /// through a k-way merge each iteration — results stay bit-identical
    /// to the unbounded run. Clearing the budget folds any on-disk
    /// combination state back into the resident map.
    pub fn set_spill_budget(&mut self, budget: Option<usize>) -> SmartResult<()> {
        if budget.is_none() {
            self.unspill()?;
        }
        self.spill_budget = budget;
        Ok(())
    }

    /// The active spilling budget.
    pub fn spill_budget(&self) -> Option<usize> {
        self.spill_budget
    }

    /// Set (or clear) the hard resident-memory budget, in bytes (env
    /// default: `SMART_MEM_BUDGET`). When the live reduction maps cross it
    /// on a step where spilling is disengaged, the step fails with
    /// [`SmartError::MemBudget`] instead of growing without bound.
    pub fn set_mem_budget(&mut self, budget: Option<usize>) {
        self.mem_budget = budget;
    }

    /// The active hard memory budget.
    pub fn mem_budget(&self) -> Option<usize> {
        self.mem_budget
    }

    /// High-water resident reduction+combination map bytes observed while
    /// a budget was set (0 when no budget has ever been active) — the
    /// gauge the out-of-core acceptance bound is asserted against.
    pub fn peak_map_bytes(&self) -> usize {
        self.peak_map_bytes
    }

    /// Fold the on-disk combination run (if any) back into the resident
    /// combination map and delete it.
    fn unspill(&mut self) -> SmartResult<()> {
        let Some(rt) = self.spill_rt.as_mut() else { return Ok(()) };
        let Some(name) = rt.com_run.take() else { return Ok(()) };
        let mut cursor = rt.store.open(&name).map_err(SmartError::Spill)?;
        while cursor.advance().map_err(SmartError::Spill)? {
            let key = cursor.key().unwrap_or(0);
            let obj = smart_wire::from_bytes(cursor.value())
                .map_err(|e| SmartError::Spill(RunError::from(e)))?;
            self.com_map.insert(key, obj);
        }
        rt.store.remove(&name).map_err(SmartError::Spill)?;
        Ok(())
    }

    /// Release the retained per-thread reduction-map shells (they are
    /// rebuilt lazily at the next step). Use when a one-off huge step
    /// should not pin its high-water capacity for the rest of the run.
    pub fn drop_shells(&mut self) {
        self.shells = Vec::new();
        self.report_retained();
    }

    /// Publish this scheduler's retained-shell footprint to the process
    /// gauge as a delta, so several live schedulers sum instead of
    /// clobbering each other.
    fn report_retained(&mut self) {
        let now = self.retained_map_bytes();
        smart_memtrack::adjust_retained_map_bytes(now as isize - self.reported_retained as isize);
        self.reported_retained = now;
    }

    /// Bytes currently retained by the reused per-thread reduction-map
    /// shells (also reported to `smart_memtrack` after every step).
    pub fn retained_map_bytes(&self) -> usize {
        self.shells.iter().map(RedMap::retained_bytes).sum()
    }

    /// The combination map (paper Table 1, function 4). Under an engaged
    /// spilling shuffle the persistent map lives on disk and this resident
    /// view is empty — use [`canonical_entries`](Self::canonical_entries)
    /// for a location-independent view.
    pub fn combination_map(&self) -> &ComMap<A::Red> {
        &self.com_map
    }

    /// The combination map in canonical key-sorted order, wherever it
    /// lives: streamed from the on-disk combination run when the spilling
    /// shuffle holds it there, read from the resident map otherwise. This
    /// is the comparison/checkpoint form the transport, recovery, and
    /// service layers use.
    pub fn canonical_entries(&self) -> SmartResult<Vec<(Key, A::Red)>> {
        if let Some(rt) = &self.spill_rt {
            if let Some(name) = &rt.com_run {
                let mut cursor = rt.store.open(name).map_err(SmartError::Spill)?;
                let mut out = Vec::new();
                while cursor.advance().map_err(SmartError::Spill)? {
                    let key = cursor.key().unwrap_or(0);
                    let obj = smart_wire::from_bytes(cursor.value())
                        .map_err(|e| SmartError::Spill(RunError::from(e)))?;
                    out.push((key, obj));
                }
                return Ok(out);
            }
        }
        Ok(self.com_map.to_sorted_entries())
    }

    /// Wire-serialized [`canonical_entries`](Self::canonical_entries) —
    /// the bit-identity comparison form used across transports, ranks,
    /// and recovery paths.
    pub fn canonical_map_bytes(&self) -> SmartResult<Vec<u8>> {
        smart_wire::to_bytes(&self.canonical_entries()?)
            .map_err(|e| SmartError::Spill(RunError::from(e)))
    }

    /// The analytics implementation.
    pub fn analytics(&self) -> &A {
        &self.analytics
    }

    /// The scheduler arguments.
    pub fn args(&self) -> &SchedArgs<A::Extra> {
        &self.args
    }

    /// Time-steps processed so far.
    pub fn steps_run(&self) -> usize {
        self.steps_run
    }

    /// Clear analytics state between independent datasets (e.g. per
    /// time-step window analytics). Extra data will be re-processed on the
    /// next run.
    pub fn reset(&mut self) {
        self.com_map.clear();
        self.extra_processed = false;
        self.discard_com_run();
    }

    /// Delete the on-disk combination run, if one exists (state reset —
    /// best-effort, the scratch dir is reclaimed on drop anyway).
    fn discard_com_run(&mut self) {
        if let Some(rt) = self.spill_rt.as_mut() {
            if let Some(name) = rt.com_run.take() {
                let _ = rt.store.remove(&name);
            }
        }
    }

    /// Capture the scheduler's resumable state: the persistent combination
    /// map in canonical key-sorted order plus the step cursor. This is what
    /// a checkpoint must hold for a restarted scheduler to continue
    /// bit-identically (`smart-ft`'s recovery driver wraps this in a
    /// CRC-validated on-disk record). Fallible because a spilled
    /// combination map streams in from its on-disk run.
    pub fn snapshot(&self) -> SmartResult<Snapshot<A::Red>> {
        Ok((self.canonical_entries()?, self.steps_run))
    }

    /// Restore state captured by [`snapshot`](Self::snapshot): rebuild the
    /// combination map from `entries` and set the step cursor. Extra data
    /// is treated as already processed — its effect lives inside the
    /// snapshotted map, and re-seeding it would double-count. Any on-disk
    /// combination run is discarded; the next spilled step moves the
    /// restored map back out of core.
    pub fn restore(&mut self, entries: Vec<(Key, A::Red)>, steps_run: usize) {
        self.com_map = ComMap::from_entries(entries);
        self.steps_run = steps_run;
        self.extra_processed = true;
        self.discard_com_run();
    }

    /// Single-key analytics on one input block, single rank
    /// (paper Table 1, function 5).
    pub fn run(&mut self, input: &[A::In], out: &mut [A::Out]) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.execute(StepSpec::new(&[(self.args.partition_offset, input)]), out)
    }

    /// Multi-key analytics on one input block, single rank
    /// (paper Table 1, function 6).
    pub fn run2(&mut self, input: &[A::In], out: &mut [A::Out]) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.execute(
            StepSpec::new(&[(self.args.partition_offset, input)]).with_key_mode(KeyMode::Multi),
            out,
        )
    }

    /// Single-key analytics with global combination across the cluster.
    pub fn run_dist(
        &mut self,
        comm: &mut Communicator,
        input: &[A::In],
        out: &mut [A::Out],
    ) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.execute(
            StepSpec::new(&[(self.args.partition_offset, input)]).with_comm(Some(comm)),
            out,
        )
    }

    /// Multi-key analytics with global combination across the cluster.
    pub fn run2_dist(
        &mut self,
        comm: &mut Communicator,
        input: &[A::In],
        out: &mut [A::Out],
    ) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.execute(
            StepSpec::new(&[(self.args.partition_offset, input)])
                .with_key_mode(KeyMode::Multi)
                .with_comm(Some(comm)),
            out,
        )
    }

    /// Single-key analytics over several `(global_offset, data)` partitions
    /// in one pass, with global combination across the cluster.
    ///
    /// An in-transit staging rank serves multiple producers: each time-step
    /// it holds one partition per producer, all of which must contribute to
    /// a *single* local + global combination (running them as separate steps
    /// would pay the global collective once per producer and would break
    /// iterative analytics, whose `post_combine` must see the whole step).
    /// An empty `parts` slice still participates in the collectives — needed
    /// when streams end raggedly and an idle stager must keep its peers'
    /// global combination from deadlocking.
    pub fn run_parts_dist(
        &mut self,
        comm: &mut Communicator,
        parts: &[(usize, &[A::In])],
        out: &mut [A::Out],
    ) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.execute(StepSpec::new(parts).with_comm(Some(comm)), out)
    }

    /// Multi-key variant of [`run_parts_dist`](Self::run_parts_dist).
    pub fn run2_parts_dist(
        &mut self,
        comm: &mut Communicator,
        parts: &[(usize, &[A::In])],
        out: &mut [A::Out],
    ) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.execute(StepSpec::new(parts).with_key_mode(KeyMode::Multi).with_comm(Some(comm)), out)
    }

    /// Execute one step described by `spec` — Algorithm 1, plus the
    /// Algorithm 2 early-emission extension.
    ///
    /// This is the single entry point every placement funnels into; the
    /// `run*` family builds the [`StepSpec`] for the common cases. Phase
    /// measurements go to the default sink: [`RunStats`] when
    /// [`set_collect_stats`](Self::set_collect_stats) is on, the
    /// measurement-suppressing [`NoopObserver`] otherwise.
    pub fn execute(&mut self, spec: StepSpec<'_, A::In>, out: &mut [A::Out]) -> SmartResult<()>
    where
        A::In: Clone,
    {
        if self.collect_stats {
            let mut stats = RunStats::default();
            let result = self.execute_with(spec, out, &mut stats);
            self.last_stats = stats;
            result
        } else {
            self.last_stats = RunStats::default();
            self.execute_with(spec, out, &mut NoopObserver)
        }
    }

    /// [`execute`](Self::execute) with a caller-supplied [`PhaseObserver`]
    /// — the seam where a tracing or metrics layer plugs into the execution
    /// core. [`last_stats`](Self::last_stats) is not updated; the observer
    /// receives every phase report instead (subject to its
    /// [`enabled`](PhaseObserver::enabled) gate).
    pub fn execute_with(
        &mut self,
        spec: StepSpec<'_, A::In>,
        out: &mut [A::Out],
        observer: &mut dyn PhaseObserver,
    ) -> SmartResult<()>
    where
        A::In: Clone,
    {
        let StepSpec { parts, key_mode, mut comm } = spec;
        stage::validate(parts, self.args.chunk_size)?;
        let measure = observer.enabled();

        // Staging: zero-copy pass-through, or the Fig. 9 baseline copy.
        let mut copy_buf = std::mem::take(&mut self.copy_buf);
        let sw = Stopwatch::new(measure && self.args.copy_input);
        let staged = stage::stage(self.args.copy_input, &mut copy_buf, parts);
        if measure {
            if let Some(staged) = &staged {
                let elems: usize = staged.iter().map(|(_, p)| p.len()).sum();
                observer.staged_done((elems * std::mem::size_of::<A::In>()) as u64, sw.elapsed());
            }
        }
        let parts: &[(usize, &[A::In])] = staged.as_deref().unwrap_or(parts);

        // Algorithm 1 line 1: seed the combination map once.
        if !self.extra_processed {
            self.analytics.process_extra_data(self.args.extra_data.as_ref(), &mut self.com_map);
            self.extra_processed = true;
        }

        // Out-of-core engagement: budget set, analytics opted in, and no
        // map distribution (a spilled combination map cannot seed worker
        // shells). Engaged, workers drain over-budget shells to runs and
        // the combination map itself lives on disk between steps.
        let spilling =
            self.spill_budget.is_some() && self.analytics.spill_safe() && !self.distribute_map;
        if spilling && self.spill_rt.is_none() {
            self.spill_rt = Some(SpillRt {
                store: SpillStore::scratch("sched").map_err(SmartError::Spill)?,
                com_run: None,
                com_seq: 0,
                epoch: 0,
            });
        }
        if !spilling {
            // A previously spilled combination map must come back resident
            // before the in-memory path reads it (budget cleared mid-run,
            // distribution toggled on, …).
            self.unspill()?;
        }
        let track_peak = spilling || self.mem_budget.is_some();
        // Half the budget for the resident tails, split across shells; the
        // other half covers merge windows and in-flight entry vectors.
        let shell_budget =
            self.spill_budget.unwrap_or(0) / (2 * (parts.len().max(1) * self.args.num_threads));

        let out_shared = SharedSlice::new(out);

        for _iter in 0..self.args.num_iters {
            // Reduction (lines 4–10 + Algorithm 2): one split per thread
            // into the retained shells, partitions run back-to-back over
            // the same pool.
            let epoch = match self.spill_rt.as_mut() {
                Some(rt) if spilling => {
                    let e = rt.epoch;
                    rt.epoch += 1;
                    e
                }
                _ => 0,
            };
            let tally = reduce::reduce_parts(
                &reduce::ReduceCfg {
                    analytics: &self.analytics,
                    com_map: &self.com_map,
                    nthreads: self.args.num_threads,
                    chunk_size: self.args.chunk_size,
                    distribute: self.distribute_map,
                    key_mode,
                    // spill_safe analytics never trigger; suppressing
                    // emission keeps the output path single (convert from
                    // the merged combination run).
                    emission_enabled: !spilling
                        && !self.args.disable_trigger
                        && !out_shared.is_empty(),
                    measure,
                    scalar_reduce: self.scalar_reduce,
                    // Dense shells charge their full key-bound footprint
                    // up front, which would trip the threshold regardless
                    // of fill; spilled shells stay hashed.
                    dense_maps: self.dense_maps && !spilling,
                    spill: match &self.spill_rt {
                        Some(rt) if spilling => {
                            Some(spill::SpillPlan { store: &rt.store, shell_budget, epoch })
                        }
                        _ => None,
                    },
                },
                &self.pool,
                parts,
                &out_shared,
                &mut self.shells,
                observer,
            )?;
            if measure && tally.runs > 0 {
                observer.spill_done(tally.runs, tally.bytes, tally.busy);
            }

            if track_peak {
                let used = self.shells.iter().map(RedMap::retained_bytes).sum::<usize>()
                    + self.com_map.retained_bytes();
                self.peak_map_bytes = self.peak_map_bytes.max(used);
                if !spilling {
                    if let Some(limit) = self.mem_budget {
                        if used > limit {
                            return Err(SmartError::MemBudget { limit, used });
                        }
                    }
                }
            }

            let sw = Stopwatch::new(measure);
            if spilling {
                // Out-of-core combination: merge this iteration's runs and
                // tails (plus the globally combined delta, distributed)
                // with the previous combination run into a fresh one.
                self.spill_combine(comm.as_deref_mut(), observer)?;
            } else {
                // Combination (lines 11–17) into a fresh *delta* map: the
                // delta holds only this iteration's contribution, so global
                // combination never re-sums state previous steps already
                // made global (the combination map persists across
                // time-steps). The shells are drained in place and stay
                // retained for the next step.
                let mut delta = combine::local_combine(
                    &self.analytics,
                    &self.pool,
                    self.combine_strategy,
                    &mut self.shells,
                    observer,
                )?;
                if self.global_combination {
                    if let Some(comm) = comm.as_deref_mut() {
                        delta = combine::global_combine(
                            &self.analytics,
                            self.combine_strategy,
                            comm,
                            delta,
                            self.wire_view,
                            observer,
                        )
                        // A comm failure here (typically PeerGone) names the
                        // observing rank and the step it was executing, so a
                        // distributed drive's failure report is actionable.
                        .map_err(|e| e.at(comm.rank(), self.steps_run))?;
                    }
                }
                // Fold the (now global) delta into the persistent
                // combination map, then line 18.
                combine::merge_into(&self.analytics, delta, &mut self.com_map);
                self.analytics.post_combine(&mut self.com_map);
            }
            if measure {
                observer.iter_done(sw.elapsed());
            }
        }

        // Lines 20–23: convert remaining reduction objects into the output.
        if !out_shared.is_empty() {
            if spilling {
                self.convert_from_disk(&out_shared)?;
            } else {
                reduce::convert_remaining(&self.analytics, &self.com_map, &out_shared)?;
            }
        }

        self.copy_buf = copy_buf;
        self.steps_run += 1;
        // Account the retained shell capacity so memory budgets see the
        // reuse pool, not just live allocations at sample time.
        self.report_retained();
        Ok(())
    }

    /// The combination phase of a spilled iteration: k-way merge this
    /// iteration's step runs and resident shell tails — and, distributed,
    /// the globally combined delta — with the previous combination run,
    /// streaming straight into a fresh combination run. No stage ever
    /// holds the whole map resident; the delta the distributed path keeps
    /// in memory holds only one step's contribution.
    fn spill_combine(
        &mut self,
        comm: Option<&mut Communicator>,
        observer: &mut dyn PhaseObserver,
    ) -> SmartResult<()> {
        let measure = observer.enabled();
        let sw = Stopwatch::new(measure);
        let Some(rt) = self.spill_rt.as_mut() else { return Ok(()) };

        let step_runs: Vec<String> = rt
            .store
            .run_names()
            .map_err(SmartError::Spill)?
            .into_iter()
            .filter(|n| n.starts_with("r-"))
            .collect();

        // The previous combination state is the oldest — and therefore
        // first — merge source: the prior combination run, or whatever is
        // resident (a restored snapshot, extra-data seeding) on the first
        // spilled step.
        let old_com = rt.com_run.take();
        let com_src: Option<spill::Src<A::Red>> = match &old_com {
            Some(name) => Some(spill::Src::Run(rt.store.open(name).map_err(SmartError::Spill)?)),
            None if !self.com_map.is_empty() => {
                let mut entries = self.com_map.drain_entries();
                entries.sort_unstable_by_key(|&(k, _)| k);
                Some(spill::Src::mem(entries))
            }
            None => None,
        };

        // This iteration's contribution: step runs in name order (their
        // zero-padded names sort in (epoch, partition, thread, sequence)
        // creation order), then the resident tails in shell order — the
        // same fold order in-memory local combination uses.
        let mut step_sources: Vec<spill::Src<A::Red>> = Vec::with_capacity(step_runs.len());
        for name in &step_runs {
            step_sources.push(spill::Src::Run(rt.store.open(name).map_err(SmartError::Spill)?));
        }
        for shell in self.shells.iter_mut() {
            if shell.is_empty() {
                continue;
            }
            let mut entries = shell.drain_entries();
            entries.sort_unstable_by_key(|&(k, _)| k);
            step_sources.push(spill::Src::mem(entries));
        }

        let next = spill::com_name(rt.com_seq);
        rt.com_seq += 1;

        match comm {
            Some(comm) if self.global_combination => {
                // The rank's delta must be resident for the collectives.
                let local = spill::merge_to_entries(&self.analytics, step_sources)?;
                if measure {
                    observer.local_merge_done(sw.elapsed());
                }
                let delta = combine::global_combine_entries(
                    &self.analytics,
                    self.combine_strategy,
                    comm,
                    local,
                    self.wire_view,
                    observer,
                )
                .map_err(|e| e.at(comm.rank(), self.steps_run))?;
                let mut final_sources: Vec<spill::Src<A::Red>> = Vec::with_capacity(2);
                if let Some(com) = com_src {
                    final_sources.push(com);
                }
                final_sources.push(spill::Src::mem(delta));
                spill::merge_to_run(&self.analytics, final_sources, &rt.store, &next)?;
            }
            _ => {
                let mut sources: Vec<spill::Src<A::Red>> =
                    Vec::with_capacity(step_sources.len() + 1);
                if let Some(com) = com_src {
                    sources.push(com);
                }
                sources.extend(step_sources);
                spill::merge_to_run(&self.analytics, sources, &rt.store, &next)?;
                if measure {
                    observer.local_merge_done(sw.elapsed());
                }
            }
        }
        rt.com_run = Some(next);
        if let Some(name) = &old_com {
            rt.store.remove(name).map_err(SmartError::Spill)?;
        }
        for name in &step_runs {
            rt.store.remove(name).map_err(SmartError::Spill)?;
        }
        Ok(())
    }

    /// Algorithm 1 lines 20–23 against an on-disk combination map: stream
    /// the run's records through a fixed window, converting each into its
    /// output slot.
    fn convert_from_disk(&self, out: &SharedSlice<'_, A::Out>) -> SmartResult<()> {
        let Some(rt) = &self.spill_rt else { return Ok(()) };
        let Some(name) = &rt.com_run else { return Ok(()) };
        let mut cursor = rt.store.open(name).map_err(SmartError::Spill)?;
        while cursor.advance().map_err(SmartError::Spill)? {
            let key = cursor.key().unwrap_or(0);
            let idx = reduce::checked_index(key, out.len())?;
            let obj: A::Red = smart_wire::from_bytes(cursor.value())
                .map_err(|e| SmartError::Spill(RunError::from(e)))?;
            // SAFETY: the parallel phase is over; this thread is the only
            // writer.
            unsafe { out.with_mut(idx, |o| self.analytics.convert(&obj, o)) };
        }
        Ok(())
    }
}

impl<A: Analytics> Drop for Scheduler<A> {
    fn drop(&mut self) {
        // Withdraw this scheduler's contribution to the retained-map gauge.
        smart_memtrack::adjust_retained_map_bytes(-(self.reported_retained as isize));
        // Reclaim the scratch run store (best-effort; it lives under the
        // temp dir regardless).
        if let Some(rt) = &self.spill_rt {
            rt.store.cleanup();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Chunk, Key, RedObj};
    use serde::{Deserialize, Serialize};
    use smart_pool::shared_pool;
    use std::time::Duration;

    /// Sum of squares under key 0 — the simplest single-key analytics.
    #[derive(Clone, Serialize, Deserialize, Default, Debug, PartialEq)]
    struct Acc {
        sum: f64,
        n: u64,
    }
    impl RedObj for Acc {}

    struct SumSquares;
    impl Analytics for SumSquares {
        type In = f64;
        type Red = Acc;
        type Out = f64;
        type Extra = ();
        fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<Acc>) {
            let a = obj.get_or_insert_with(Acc::default);
            a.sum += d[c.local_start] * d[c.local_start];
            a.n += 1;
        }
        fn merge(&self, red: &Acc, com: &mut Acc) {
            com.sum += red.sum;
            com.n += red.n;
        }
        fn convert(&self, obj: &Acc, out: &mut f64) {
            *out = obj.sum;
        }
        fn key_bound(&self) -> Option<usize> {
            Some(1)
        }
        // Explicit batch kernel, so every SumSquares test also pins the
        // reduce_batch seam against the classic walk it must match.
        fn reduce_batch(
            &self,
            data: &[f64],
            batch: &crate::Batch,
            sink: &mut crate::BatchSink<'_, '_, Self>,
        ) {
            for i in 0..batch.chunks {
                let chunk = batch.chunk_at(i);
                sink.accumulate_keyed(self, &chunk, data, 0);
            }
        }
    }

    fn pool4() -> SharedPool {
        shared_pool(4).unwrap()
    }

    #[test]
    fn sum_squares_matches_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 * 0.1).collect();
        let expected: f64 = data.iter().map(|x| x * x).sum();
        let mut s = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
        let mut out = [0.0f64];
        s.run(&data, &mut out).unwrap();
        assert!((out[0] - expected).abs() < 1e-9);
        assert_eq!(s.combination_map().get(0).unwrap().n, 1000);
        assert_eq!(s.steps_run(), 1);
    }

    #[test]
    fn multiple_steps_accumulate_without_double_counting() {
        // Non-iterative analytics must NOT distribute the combination map,
        // or re-running over the next time-step would re-merge old counts
        // once per thread.
        let mut s = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
        let step: Vec<f64> = vec![2.0; 100];
        let mut out = [0.0f64];
        for t in 1..=5 {
            s.run(&step, &mut out).unwrap();
            assert!((out[0] - (t as f64) * 400.0).abs() < 1e-9, "step {t}: {}", out[0]);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut s = Scheduler::new(SumSquares, SchedArgs::new(2, 1), pool4()).unwrap();
        let mut out = [0.0f64];
        s.run(&[1.0, 2.0], &mut out).unwrap();
        s.reset();
        s.run(&[3.0], &mut out).unwrap();
        assert!((out[0] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn chunk_mismatch_is_an_error() {
        let mut s = Scheduler::new(SumSquares, SchedArgs::new(2, 3), pool4()).unwrap();
        let err = s.run(&[1.0; 10], &mut []).unwrap_err();
        assert!(matches!(err, SmartError::ChunkMismatch { input_len: 10, chunk_size: 3 }));
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(matches!(
            Scheduler::new(SumSquares, SchedArgs::new(0, 1), pool4()),
            Err(SmartError::BadArgs(_))
        ));
        assert!(matches!(
            Scheduler::new(SumSquares, SchedArgs::new(9, 1), pool4()),
            Err(SmartError::BadArgs(_))
        ));
        assert!(matches!(
            Scheduler::new(SumSquares, SchedArgs::new(1, 0), pool4()),
            Err(SmartError::BadArgs(_))
        ));
        assert!(matches!(
            Scheduler::new(SumSquares, SchedArgs::new(1, 1).with_iters(0), pool4()),
            Err(SmartError::BadArgs(_))
        ));
    }

    #[test]
    fn copy_input_mode_gives_identical_results() {
        let data: Vec<f64> = (0..512).map(|i| (i % 13) as f64).collect();
        let mut a = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
        let mut b = Scheduler::new(SumSquares, SchedArgs::new(4, 1).with_copy_input(true), pool4())
            .unwrap();
        let (mut oa, mut ob) = ([0.0f64], [0.0f64]);
        a.run(&data, &mut oa).unwrap();
        b.run(&data, &mut ob).unwrap();
        assert_eq!(oa, ob);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let data: Vec<f64> = (0..999).map(|i| (i as f64).sin()).collect();
        let mut reference = None;
        for threads in 1..=4 {
            let mut s = Scheduler::new(SumSquares, SchedArgs::new(threads, 1), pool4()).unwrap();
            let mut out = [0.0f64];
            s.run(&data, &mut out).unwrap();
            match reference {
                None => reference = Some(out[0]),
                // FP addition order differs per thread count; tolerance.
                Some(r) => assert!((out[0] - r).abs() < 1e-9),
            }
        }
    }

    /// Per-element pass-through keyed by global position, with trigger —
    /// exercises run2, early emission, and positional keys.
    #[derive(Clone, Serialize, Deserialize, Debug)]
    struct One {
        v: f64,
        done: bool,
    }
    impl RedObj for One {
        fn trigger(&self) -> bool {
            self.done
        }
    }

    struct Identity;
    impl Analytics for Identity {
        type In = f64;
        type Red = One;
        type Out = f64;
        type Extra = ();
        fn gen_keys(&self, c: &Chunk, _d: &[f64], _com: &ComMap<One>, keys: &mut Vec<Key>) {
            keys.push(c.global_start as Key);
        }
        fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<One>) {
            *obj = Some(One { v: d[c.local_start], done: true });
        }
        fn merge(&self, red: &One, com: &mut One) {
            com.v = red.v;
            com.done = true;
        }
        fn convert(&self, obj: &One, out: &mut f64) {
            *out = obj.v;
        }
        // Positional keys with a declared bound: every Identity test also
        // exercises the dense reduction-map backend (and, where keys pass
        // the bound, its spill to hashing).
        fn key_bound(&self) -> Option<usize> {
            Some(1 << 10)
        }
    }

    #[test]
    fn early_emission_writes_every_slot_and_empties_map() {
        let data: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let mut s = Scheduler::new(Identity, SchedArgs::new(4, 1), pool4()).unwrap();
        let mut out = vec![-1.0f64; 256];
        s.run2(&data, &mut out).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64));
        // Everything triggered: nothing left in the combination map.
        assert_eq!(s.combination_map().len(), 0);
    }

    #[test]
    fn disabled_trigger_routes_through_combination_map() {
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mut s =
            Scheduler::new(Identity, SchedArgs::new(4, 1).with_trigger_disabled(true), pool4())
                .unwrap();
        let mut out = vec![-1.0f64; 64];
        s.run2(&data, &mut out).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64));
        // Nothing was emitted early: all 64 objects reached the map.
        assert_eq!(s.combination_map().len(), 64);
    }

    #[test]
    fn key_out_of_range_is_an_error() {
        let data = vec![1.0f64; 8];
        let mut s = Scheduler::new(Identity, SchedArgs::new(2, 1), pool4()).unwrap();
        let mut out = vec![0.0f64; 4]; // too small for keys 4..8
        let err = s.run2(&data, &mut out).unwrap_err();
        assert!(matches!(err, SmartError::KeyOutOfRange { .. }));
    }

    #[test]
    fn empty_out_skips_conversion_and_emission() {
        let data = vec![1.0f64; 16];
        let mut s = Scheduler::new(Identity, SchedArgs::new(2, 1), pool4()).unwrap();
        s.run2(&data, &mut []).unwrap();
        // No out buffer → no early emission → objects stay in the map.
        assert_eq!(s.combination_map().len(), 16);
    }

    /// Iterative analytics with extra data: counts how many times
    /// post_combine ran and checks map distribution.
    #[derive(Clone, Serialize, Deserialize, Debug, Default)]
    struct Iter {
        base: f64,
        adds: u64,
        rounds: u64,
    }
    impl RedObj for Iter {}

    struct Iterative;
    impl Analytics for Iterative {
        type In = f64;
        type Red = Iter;
        type Out = f64;
        type Extra = f64;
        fn accumulate(&self, _c: &Chunk, _d: &[f64], _k: Key, obj: &mut Option<Iter>) {
            obj.as_mut().expect("distributed from extra data").adds += 1;
        }
        fn merge(&self, red: &Iter, com: &mut Iter) {
            com.adds += red.adds;
        }
        fn process_extra_data(&self, extra: Option<&f64>, com: &mut ComMap<Iter>) {
            com.insert(0, Iter { base: *extra.expect("extra required"), adds: 0, rounds: 0 });
        }
        fn post_combine(&self, com: &mut ComMap<Iter>) {
            let obj = com.get_mut(0).expect("key 0 present");
            obj.rounds += 1;
            obj.adds = 0; // reset distributive field, like k-means update()
        }
        fn convert(&self, obj: &Iter, out: &mut f64) {
            *out = obj.base + obj.rounds as f64;
        }
    }

    #[test]
    fn iterations_distribute_and_post_combine() {
        let data = vec![0.0f64; 40];
        let args = SchedArgs::new(4, 1).with_extra(7.0).with_iters(3);
        let mut s = Scheduler::new(Iterative, args, pool4()).unwrap();
        let mut out = [0.0f64];
        s.run(&data, &mut out).unwrap();
        // base 7 + 3 post_combine rounds
        assert_eq!(out[0], 10.0);
    }

    #[test]
    fn global_combination_across_ranks_matches_single_rank() {
        let data: Vec<f64> = (0..800).map(|i| (i % 10) as f64).collect();
        // Single-rank reference.
        let mut reference = [0.0f64];
        Scheduler::new(SumSquares, SchedArgs::new(2, 1), pool4())
            .unwrap()
            .run(&data, &mut reference)
            .unwrap();

        for ranks in [2, 3, 4] {
            let data = data.clone();
            let results = smart_comm::run_cluster(ranks, |mut comm| {
                let pool = shared_pool(2).unwrap();
                let share = data.len() / comm.size();
                let lo = comm.rank() * share;
                let hi = if comm.rank() + 1 == comm.size() { data.len() } else { lo + share };
                let mut s = Scheduler::new(SumSquares, SchedArgs::new(2, 1), pool).unwrap();
                let mut out = [0.0f64];
                s.run_dist(&mut comm, &data[lo..hi], &mut out).unwrap();
                out[0]
            });
            for r in &results {
                assert!((r - reference[0]).abs() < 1e-6, "ranks={ranks}: {r} vs {}", reference[0]);
            }
        }
    }

    #[test]
    fn disabling_global_combination_keeps_results_local() {
        let results = smart_comm::run_cluster(2, |mut comm| {
            let pool = shared_pool(1).unwrap();
            let mut s = Scheduler::new(SumSquares, SchedArgs::new(1, 1), pool).unwrap();
            s.set_global_combination(false);
            let data = vec![(comm.rank() + 1) as f64; 10];
            let mut out = [0.0f64];
            s.run_dist(&mut comm, &data, &mut out).unwrap();
            out[0]
        });
        assert!((results[0] - 10.0).abs() < 1e-12);
        assert!((results[1] - 40.0).abs() < 1e-12);
    }

    /// Wire-serialize a scheduler's combination map in canonical (sorted)
    /// order — the "bit-identical" comparison form.
    fn map_bytes<A: Analytics>(s: &Scheduler<A>) -> Vec<u8> {
        smart_wire::to_bytes(&s.combination_map().to_sorted_entries()).unwrap()
    }

    const STRATEGIES: [CombineStrategy; 4] = [
        CombineStrategy::Serial,
        CombineStrategy::Tree,
        CombineStrategy::Sharded,
        CombineStrategy::Gossip,
    ];

    #[test]
    fn combine_strategies_produce_bit_identical_maps() {
        // Integer-valued f64 data keeps every merge order exact, so the
        // strategy comparison really is bit-for-bit.
        let data: Vec<f64> = (0..1000).map(|i| (i % 13) as f64).collect();

        // Sum-of-squares (single-key).
        let mut reference: Option<(Vec<u8>, f64)> = None;
        for strategy in STRATEGIES {
            let mut s = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
            s.set_combine_strategy(strategy);
            let mut out = [0.0f64];
            s.run(&data, &mut out).unwrap();
            let got = (map_bytes(&s), out[0]);
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "SumSquares, {strategy:?}"),
            }
        }

        // Identity (multi-key, trigger disabled so the map retains entries).
        let mut reference: Option<Vec<u8>> = None;
        for strategy in STRATEGIES {
            let mut s =
                Scheduler::new(Identity, SchedArgs::new(4, 1).with_trigger_disabled(true), pool4())
                    .unwrap();
            s.set_combine_strategy(strategy);
            let mut out = vec![0.0f64; 64];
            s.run2(&data[..64], &mut out).unwrap();
            match &reference {
                None => reference = Some(map_bytes(&s)),
                Some(r) => assert_eq!(&map_bytes(&s), r, "Identity, {strategy:?}"),
            }
        }

        // Iterative (extra data + post_combine + map distribution).
        let mut reference: Option<(Vec<u8>, f64)> = None;
        for strategy in STRATEGIES {
            let args = SchedArgs::new(4, 1).with_extra(7.0).with_iters(3);
            let mut s = Scheduler::new(Iterative, args, pool4()).unwrap();
            s.set_combine_strategy(strategy);
            let mut out = [0.0f64];
            s.run(&data[..40], &mut out).unwrap();
            let got = (map_bytes(&s), out[0]);
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "Iterative, {strategy:?}"),
            }
        }
    }

    #[test]
    fn combine_strategies_agree_across_ranks() {
        let data: Vec<f64> = (0..600).map(|i| (i % 7) as f64).collect();
        let mut reference: Option<Vec<(Vec<u8>, f64)>> = None;
        for strategy in STRATEGIES {
            let data = data.clone();
            let per_rank = smart_comm::run_cluster(3, move |mut comm| {
                let pool = shared_pool(2).unwrap();
                let share = data.len() / comm.size();
                let lo = comm.rank() * share;
                let hi = if comm.rank() + 1 == comm.size() { data.len() } else { lo + share };
                let mut s = Scheduler::new(SumSquares, SchedArgs::new(2, 1), pool).unwrap();
                s.set_combine_strategy(strategy);
                let mut out = [0.0f64];
                s.run_dist(&mut comm, &data[lo..hi], &mut out).unwrap();
                (map_bytes(&s), out[0])
            });
            // Global combination: every rank ends with the same map.
            for rank in 1..per_rank.len() {
                assert_eq!(per_rank[rank], per_rank[0], "{strategy:?} rank {rank} diverged");
            }
            match &reference {
                None => reference = Some(per_rank),
                Some(r) => assert_eq!(&per_rank, r, "{strategy:?} diverged from Serial"),
            }
        }
    }

    #[test]
    fn sharded_strategy_bounds_per_rank_comm_bytes() {
        // Identical 64-key inputs on every rank, so each rank's serialized
        // delta equals the serialized global map and the ≤ 2x sharded
        // traffic bound can be checked directly against RunStats.
        for ranks in [2, 4, 5] {
            let stats: Vec<RunStats> = smart_comm::run_cluster(ranks, |mut comm| {
                let pool = shared_pool(2).unwrap();
                let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
                let mut s = Scheduler::new(Identity, SchedArgs::new(2, 1), pool).unwrap();
                s.set_combine_strategy(CombineStrategy::Sharded);
                s.set_collect_stats(true);
                // Keep every entry in the map: no out buffer, no emission.
                s.run2_dist(&mut comm, &data, &mut []).unwrap();
                s.last_stats().clone()
            });
            for (rank, st) in stats.iter().enumerate() {
                assert!(st.global_bytes > 0, "stats should have been collected");
                let slack = 64 * ranks as u64;
                assert!(
                    st.comm_bytes <= 2 * st.global_bytes + slack,
                    "ranks={ranks} rank={rank}: sent {} bytes > 2x map ({}) + {slack}",
                    st.comm_bytes,
                    st.global_bytes
                );
                assert!(
                    st.local_merge_busy + st.global_comm_busy
                        <= st.combine_busy + Duration::from_millis(1)
                );
            }
        }
    }

    #[test]
    fn stats_off_means_no_measurement_at_all() {
        // The satellite invariant on set_collect_stats: with stats off the
        // core must not measure anything — last_stats stays empty.
        let data: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let mut s = Scheduler::new(SumSquares, SchedArgs::new(2, 1), pool4()).unwrap();
        let mut out = [0.0f64];
        s.run(&data, &mut out).unwrap();
        let st = s.last_stats();
        assert!(st.split_busy.is_empty());
        assert_eq!(st.iters, 0);
        assert_eq!(st.combine_busy, Duration::ZERO);
        assert_eq!((st.global_bytes, st.comm_bytes), (0, 0));

        // Flip stats on: the same scheduler now measures.
        s.set_collect_stats(true);
        s.run(&data, &mut out).unwrap();
        let st = s.last_stats();
        assert_eq!(st.split_busy.len(), 2);
        assert_eq!(st.iters, 1);

        // And off again: last_stats resets to empty.
        s.set_collect_stats(false);
        s.run(&data, &mut out).unwrap();
        assert_eq!(s.last_stats().iters, 0);
    }

    #[test]
    fn copy_mode_reports_staged_bytes_zero_copy_does_not() {
        let data: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let mut out = [0.0f64];

        let mut copying =
            Scheduler::new(SumSquares, SchedArgs::new(2, 1).with_copy_input(true), pool4())
                .unwrap();
        copying.set_collect_stats(true);
        copying.run(&data, &mut out).unwrap();
        assert_eq!(
            copying.last_stats().staged_bytes,
            (data.len() * std::mem::size_of::<f64>()) as u64
        );

        let mut zero_copy = Scheduler::new(SumSquares, SchedArgs::new(2, 1), pool4()).unwrap();
        zero_copy.set_collect_stats(true);
        zero_copy.run(&data, &mut out).unwrap();
        assert_eq!(zero_copy.last_stats().staged_bytes, 0);
        assert_eq!(zero_copy.last_stats().stage_busy, Duration::ZERO);
    }

    #[test]
    fn execute_with_reports_to_external_observer() {
        // The observer seam: a custom sink sees every phase callback in
        // order without touching last_stats.
        #[derive(Default)]
        struct Recorder {
            events: Vec<&'static str>,
        }
        impl PhaseObserver for Recorder {
            fn split_done(&mut self, _tid: usize, _busy: Duration) {
                self.events.push("split");
            }
            fn local_merge_done(&mut self, _busy: Duration) {
                self.events.push("local_merge");
            }
            fn global_combine_done(&mut self, _p: u64, _w: u64, _busy: Duration) {
                self.events.push("global");
            }
            fn iter_done(&mut self, _busy: Duration) {
                self.events.push("iter");
            }
        }

        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut s = Scheduler::new(SumSquares, SchedArgs::new(2, 1), pool4()).unwrap();
        let mut out = [0.0f64];
        let mut rec = Recorder::default();
        let parts = [(0usize, &data[..])];
        s.execute_with(StepSpec::new(&parts), &mut out, &mut rec).unwrap();
        assert_eq!(rec.events, ["split", "split", "local_merge", "iter"]);
        // last_stats untouched by the external-observer path.
        assert!(s.last_stats().split_busy.is_empty());
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let step: Vec<f64> = (0..120).map(|i| (i % 9) as f64).collect();
        // Reference: three uninterrupted steps.
        let mut full = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
        let mut out = [0.0f64];
        for _ in 0..3 {
            full.run(&step, &mut out).unwrap();
        }
        // Interrupted: two steps, snapshot, restore into a *fresh*
        // scheduler, one more step.
        let mut first = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
        first.run(&step, &mut out).unwrap();
        first.run(&step, &mut out).unwrap();
        let (entries, cursor) = first.snapshot().unwrap();
        assert_eq!(cursor, 2);
        drop(first);
        let mut resumed = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
        resumed.restore(entries, cursor);
        resumed.run(&step, &mut out).unwrap();
        assert_eq!(resumed.steps_run(), 3);
        assert_eq!(map_bytes(&resumed), map_bytes(&full));
    }

    #[test]
    fn snapshot_restore_does_not_reseed_extra_data() {
        let data = vec![0.0f64; 20];
        let args = SchedArgs::new(2, 1).with_extra(7.0).with_iters(2);
        let mut s = Scheduler::new(Iterative, args.clone(), pool4()).unwrap();
        let mut out = [0.0f64];
        s.run(&data, &mut out).unwrap();
        let (entries, cursor) = s.snapshot().unwrap();
        let mut r = Scheduler::new(Iterative, args, pool4()).unwrap();
        r.restore(entries, cursor);
        r.run(&data, &mut out).unwrap();
        // base 7 + 4 post_combine rounds (2 iters × 2 steps), with the
        // extra-data seed applied exactly once.
        assert_eq!(out[0], 11.0);
    }

    #[test]
    fn peer_death_during_global_combine_reports_rank_and_step() {
        let results = smart_comm::run_cluster(2, |mut comm| {
            if comm.rank() == 1 {
                return Ok(()); // dies before participating: comm drops here
            }
            let pool = shared_pool(1).unwrap();
            let mut s = Scheduler::new(SumSquares, SchedArgs::new(1, 1), pool).unwrap();
            let data = [1.0f64, 2.0];
            let parts = [(0usize, &data[..])];
            let mut out = [0.0f64];
            s.run_parts_dist(&mut comm, &parts, &mut out)
        });
        let err = results[0].as_ref().unwrap_err();
        match err {
            SmartError::Context { rank: 0, step: 0, source } => {
                assert!(
                    matches!(
                        source.as_ref(),
                        SmartError::Comm(smart_comm::CommError::PeerGone { peer: 1 })
                    ),
                    "context must wrap the PeerGone: {source:?}"
                );
            }
            other => panic!("expected rank/step context, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("rank 0") && msg.contains("step 0"), "{msg}");
    }

    #[test]
    fn shells_are_retained_and_reused_across_steps() {
        let data: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let mut s =
            Scheduler::new(Identity, SchedArgs::new(4, 1).with_trigger_disabled(true), pool4())
                .unwrap();
        let mut out = vec![0.0f64; 256];
        s.run2(&data, &mut out).unwrap();
        let retained = s.retained_map_bytes();
        assert!(retained > 0, "shells must survive the step");
        assert!(s.shells.iter().any(|m| m.capacity() > 0));
        // key_bound is declared, so retained shells are dense.
        assert!(s.shells.iter().any(|m| m.is_dense()), "dense backend should engage");
        assert!(smart_memtrack::retained_map_bytes() >= retained);

        // Steady state: a second identical step reuses the pool and the
        // results stay exact.
        s.reset();
        s.run2(&data, &mut out).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64));
        assert_eq!(s.combination_map().len(), 256);

        s.drop_shells();
        assert_eq!(s.retained_map_bytes(), 0);
    }

    #[test]
    fn scheduler_drop_withdraws_retained_gauge() {
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mut s = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
        let mut out = [0.0f64];
        s.run(&data, &mut out).unwrap();
        let contribution = s.retained_map_bytes();
        assert!(contribution > 0);
        let gauge_with = smart_memtrack::retained_map_bytes();
        assert!(gauge_with >= contribution);
        drop(s);
        assert!(smart_memtrack::retained_map_bytes() <= gauge_with - contribution);
    }

    #[test]
    fn scalar_and_dense_knobs_do_not_change_results() {
        // The kernel/dense machinery is contract-bound to be bit-identical
        // to the classic walk over hash maps — compare all four knob
        // combinations by serialized map and output.
        let data: Vec<f64> = (0..500).map(|i| (i % 23) as f64).collect();
        let mut reference: Option<(Vec<u8>, Vec<u8>)> = None;
        for (scalar, dense) in [(false, true), (true, true), (false, false), (true, false)] {
            let mut s =
                Scheduler::new(Identity, SchedArgs::new(4, 1).with_trigger_disabled(true), pool4())
                    .unwrap();
            s.set_scalar_reduce(scalar);
            s.set_dense_maps(dense);
            let mut out = vec![0.0f64; 500];
            s.run2(&data, &mut out).unwrap();
            let got = (map_bytes(&s), smart_wire::to_bytes(&out).unwrap());
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "scalar={scalar} dense={dense} diverged"),
            }
        }
    }

    #[test]
    fn dense_shells_spill_when_keys_pass_the_bound() {
        // Identity declares key_bound 1024; a partition offset pushes the
        // positional keys past it mid-run, forcing the dense shells to
        // spill to hashing without changing any result.
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let args = SchedArgs::new(2, 1).with_partition(1000, 1064).with_trigger_disabled(true);
        let mut s = Scheduler::new(Identity, args, pool4()).unwrap();
        s.run2(&data, &mut []).unwrap();
        let entries = s.combination_map().to_sorted_entries();
        assert_eq!(entries.len(), 64);
        assert_eq!(entries[0].0, 1000);
        assert_eq!(entries[63].0, 1063);
        assert!(s.shells.iter().any(|m| !m.is_dense()), "spill should have happened");
    }

    #[test]
    fn execute_matches_run_shims() {
        let data: Vec<f64> = (0..300).map(|i| (i % 17) as f64).collect();
        let mut legacy = Scheduler::new(SumSquares, SchedArgs::new(3, 1), pool4()).unwrap();
        let mut core = Scheduler::new(SumSquares, SchedArgs::new(3, 1), pool4()).unwrap();
        let (mut a, mut b) = ([0.0f64], [0.0f64]);
        legacy.run(&data, &mut a).unwrap();
        core.execute(StepSpec::new(&[(0, &data)]), &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(map_bytes(&legacy), map_bytes(&core));
    }

    /// Many-key counting analytics that opts into the spilling shuffle.
    /// Counts are integer-carried, so spilled and resident runs must be
    /// bit-identical, not just numerically close.
    #[derive(Clone, Serialize, Deserialize, Default, Debug, PartialEq)]
    struct Cnt {
        n: u64,
    }
    impl RedObj for Cnt {}

    struct CountKeys;
    impl Analytics for CountKeys {
        type In = f64;
        type Red = Cnt;
        type Out = u64;
        type Extra = ();
        fn gen_key(&self, c: &Chunk, d: &[f64], _com: &ComMap<Cnt>) -> Key {
            d[c.local_start] as Key
        }
        fn accumulate(&self, _c: &Chunk, _d: &[f64], _k: Key, obj: &mut Option<Cnt>) {
            obj.get_or_insert_with(Cnt::default).n += 1;
        }
        fn merge(&self, red: &Cnt, com: &mut Cnt) {
            com.n += red.n;
        }
        fn spill_safe(&self) -> bool {
            true
        }
    }

    #[test]
    fn spilling_matches_resident_bit_identically() {
        let data: Vec<f64> = (0..6000).map(|i| (i % 2913) as f64).collect();
        let mut resident = Scheduler::new(CountKeys, SchedArgs::new(2, 1), pool4()).unwrap();
        resident.run(&data, &mut []).unwrap();

        let mut spilled = Scheduler::new(CountKeys, SchedArgs::new(2, 1), pool4()).unwrap();
        spilled.set_spill_budget(Some(16 * 1024)).unwrap();
        spilled.set_collect_stats(true);
        spilled.run(&data, &mut []).unwrap();

        let stats = spilled.last_stats();
        assert!(stats.spill_runs >= 2, "budget never tripped: {} runs", stats.spill_runs);
        assert!(stats.spill_bytes > 0);
        assert!(
            spilled.combination_map().is_empty(),
            "combined state should live on disk while spilling"
        );
        assert_eq!(spilled.canonical_map_bytes().unwrap(), resident.canonical_map_bytes().unwrap());
    }

    #[test]
    fn spilling_across_steps_matches_resident() {
        let mut resident = Scheduler::new(CountKeys, SchedArgs::new(3, 1), pool4()).unwrap();
        let mut spilled = Scheduler::new(CountKeys, SchedArgs::new(3, 1), pool4()).unwrap();
        spilled.set_spill_budget(Some(8 * 1024)).unwrap();
        for step in 0..3 {
            let data: Vec<f64> = (0..2000).map(|i| ((i * 7 + step * 13) % 1531) as f64).collect();
            resident.run(&data, &mut []).unwrap();
            spilled.run(&data, &mut []).unwrap();
            assert_eq!(
                spilled.canonical_map_bytes().unwrap(),
                resident.canonical_map_bytes().unwrap(),
                "diverged at step {step}"
            );
        }
        let (entries, cursor) = spilled.snapshot().unwrap();
        assert_eq!(cursor, 3);
        assert_eq!(entries.len(), 1531);
    }

    #[test]
    fn mem_budget_is_a_typed_error_without_spilling() {
        let data: Vec<f64> = (0..4000).map(|i| i as f64).collect();
        let mut s = Scheduler::new(CountKeys, SchedArgs::new(1, 1), pool4()).unwrap();
        // Pin spilling off: an ambient SMART_SPILL_BUDGET (the CI spill job
        // exports one) must not defuse the hard budget under test.
        s.set_spill_budget(None).unwrap();
        s.set_mem_budget(Some(1024));
        match s.run(&data, &mut []) {
            Err(SmartError::MemBudget { limit: 1024, used }) => assert!(used > 1024),
            other => panic!("expected MemBudget, got {other:?}"),
        }
        // The same budget with spilling engaged is satisfiable: combined
        // state streams to disk instead of occupying the map.
        let mut s = Scheduler::new(CountKeys, SchedArgs::new(1, 1), pool4()).unwrap();
        s.set_mem_budget(Some(1024));
        s.set_spill_budget(Some(1024)).unwrap();
        s.run(&data, &mut []).unwrap();
    }

    #[test]
    fn peak_resident_bytes_stay_under_budget() {
        // ~20k distinct keys: the unbounded resident footprint exceeds the
        // spill budget by the acceptance factor of 10. An (unreachable)
        // memory budget turns the peak gauge on for the resident run, which
        // measures the unbounded high-water mark.
        let data: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
        let mut resident = Scheduler::new(CountKeys, SchedArgs::new(1, 1), pool4()).unwrap();
        // The baseline must really be unbounded even under an ambient
        // SMART_SPILL_BUDGET (the CI spill job exports one).
        resident.set_spill_budget(None).unwrap();
        resident.set_mem_budget(Some(usize::MAX));
        resident.run(&data, &mut []).unwrap();
        let unbounded = resident.peak_map_bytes();
        assert!(unbounded > 0, "resident peak gauge never recorded");

        let budget = unbounded / 10;
        let mut spilled = Scheduler::new(CountKeys, SchedArgs::new(1, 1), pool4()).unwrap();
        spilled.set_spill_budget(Some(budget)).unwrap();
        spilled.run(&data, &mut []).unwrap();
        let peak = spilled.peak_map_bytes();
        assert!(
            peak <= budget,
            "peak {peak} over the {budget}-byte budget ({unbounded} unbounded)"
        );
        assert_eq!(spilled.canonical_map_bytes().unwrap(), resident.canonical_map_bytes().unwrap());
    }

    #[test]
    fn clearing_the_budget_folds_runs_back() {
        let data: Vec<f64> = (0..3000).map(|i| (i % 1723) as f64).collect();
        let mut s = Scheduler::new(CountKeys, SchedArgs::new(2, 1), pool4()).unwrap();
        s.set_spill_budget(Some(8 * 1024)).unwrap();
        s.run(&data, &mut []).unwrap();
        assert!(s.combination_map().is_empty());

        s.set_spill_budget(None).unwrap();
        let entries = s.combination_map().to_sorted_entries();
        assert_eq!(entries.len(), 1723, "unspill must fold every key back");

        // And the next resident step keeps accumulating on top of it.
        let mut resident = Scheduler::new(CountKeys, SchedArgs::new(2, 1), pool4()).unwrap();
        resident.run(&data, &mut []).unwrap();
        resident.run(&data, &mut []).unwrap();
        s.run(&data, &mut []).unwrap();
        assert_eq!(s.canonical_map_bytes().unwrap(), resident.canonical_map_bytes().unwrap());
    }
}
