//! The Smart scheduler: Algorithm 1 (the `run`/`run2` data-processing
//! mechanism) and Algorithm 2 (early emission) of the paper.

use crate::api::{Analytics, Chunk, ComMap, Key, RedObj};
use crate::args::SchedArgs;
use crate::error::{SmartError, SmartResult};
use crate::redmap::RedMap;
use crate::shared_slice::SharedSlice;
use smart_comm::Communicator;
use smart_pool::{split_range, SharedPool};
use std::time::{Duration, Instant};

/// How the combination pipeline executes — the local merge of per-thread
/// partial maps and the global merge across ranks. All three strategies
/// produce identical combination maps; they differ only in parallelism and
/// communication pattern (see DESIGN.md, "Combination pipeline").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombineStrategy {
    /// Sequential local merge on the driver thread; reduce-to-root +
    /// broadcast allreduce globally. The paper's baseline pipeline
    /// (Algorithm 1 run literally).
    Serial,
    /// Pairwise parallel tree merge of per-thread partials on the pool
    /// (⌈log₂ t⌉ rounds); same global allreduce as `Serial`.
    Tree,
    /// Tree local merge plus shard-partitioned global combination: entries
    /// are hash-partitioned by key across ranks, reduced with a ring
    /// reduce-scatter, and reassembled with a ring allgather, so per-rank
    /// traffic is bounded by ~2× the serialized map regardless of rank
    /// count. The default.
    #[default]
    Sharded,
}

/// Phase timings and volumes from the most recent `run*` call.
///
/// Every duration is *busy* time measured inside the phase, so the numbers
/// compose on any host: modeled parallel step time =
/// `max(split_busy) + combine_busy` plus a communication model applied to
/// `global_bytes` (this is how the benchmark harness reproduces the paper's
/// scaling figures on hosts with fewer cores than the experiment needs —
/// see DESIGN.md substitutions).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-worker reduction busy time, summed over iterations.
    pub split_busy: Vec<Duration>,
    /// Local + global combination busy time (merge work), all iterations.
    pub combine_busy: Duration,
    /// Portion of [`combine_busy`](Self::combine_busy) spent merging the
    /// per-thread partial maps (layer 1 of the combination pipeline), all
    /// iterations.
    pub local_merge_busy: Duration,
    /// Portion of [`combine_busy`](Self::combine_busy) spent in the global
    /// combination collective (layer 2), all iterations. Zero for
    /// single-rank runs.
    pub global_comm_busy: Duration,
    /// Bytes of serialized combination-map entries shipped per rank during
    /// global combination, all iterations.
    pub global_bytes: u64,
    /// Actual transport bytes this rank sent during global combination, all
    /// iterations (from the communicator's sent-byte counter). For
    /// [`CombineStrategy::Sharded`] this stays ≤ ~2× the serialized global
    /// map; for the tree allreduce it grows with log(ranks).
    pub comm_bytes: u64,
    /// Iterations executed.
    pub iters: usize,
    /// In-transit mode only: producer-side busy time inside streaming sends
    /// (serialization + credit waits). Zero for in-situ placements.
    pub transit_send_busy: Duration,
    /// In-transit mode only: stager-side busy time receiving and decoding
    /// streamed chunks. Zero for in-situ placements.
    pub transit_recv_busy: Duration,
    /// In-transit mode only: wire bytes streamed from producers to this
    /// stager. Zero for in-situ placements.
    pub transit_bytes: u64,
}

impl RunStats {
    /// The slowest worker's reduction busy time.
    pub fn max_split_busy(&self) -> Duration {
        self.split_busy.iter().copied().max().unwrap_or_default()
    }

    /// Total busy time across all workers and phases.
    pub fn total_busy(&self) -> Duration {
        self.split_busy.iter().sum::<Duration>() + self.combine_busy
    }

    /// Accumulate another run's stats into this one (element-wise for the
    /// per-worker vector). The in-transit stager calls the scheduler once
    /// per time-step and absorbs each step's stats into a whole-run total.
    pub fn absorb(&mut self, other: &RunStats) {
        if self.split_busy.len() < other.split_busy.len() {
            self.split_busy.resize(other.split_busy.len(), Duration::ZERO);
        }
        for (acc, &busy) in self.split_busy.iter_mut().zip(&other.split_busy) {
            *acc += busy;
        }
        self.combine_busy += other.combine_busy;
        self.local_merge_busy += other.local_merge_busy;
        self.global_comm_busy += other.global_comm_busy;
        self.global_bytes += other.global_bytes;
        self.comm_bytes += other.comm_bytes;
        self.iters += other.iters;
        self.transit_send_busy += other.transit_send_busy;
        self.transit_recv_busy += other.transit_recv_busy;
        self.transit_bytes += other.transit_bytes;
    }
}

/// A Smart analytics job bound to a thread pool.
///
/// In time-sharing mode the scheduler is invoked once per time-step on the
/// simulation's output partition (`run*`). In space-sharing mode it is
/// driven by [`crate::space::SpaceShared`]. The same scheduler instance also
/// runs *offline* analytics unchanged — the paper's point that in-situ and
/// offline code can be identical.
pub struct Scheduler<A: Analytics> {
    analytics: A,
    args: SchedArgs<A::Extra>,
    pool: SharedPool,
    global_combination: bool,
    /// Distribute the combination map into per-thread reduction maps at the
    /// start of each iteration (Algorithm 1 line 6). Required for analytics
    /// whose `accumulate` reads state seeded into the objects (k-means
    /// centroids); wrong for stateless accumulation, where the distributed
    /// copies would be double-counted by the merge. Auto-detected in
    /// [`new`](Self::new) (iterative or extra-data analytics distribute),
    /// overridable with [`set_distribute_map`](Self::set_distribute_map).
    distribute_map: bool,
    combine_strategy: CombineStrategy,
    com_map: ComMap<A::Red>,
    extra_processed: bool,
    /// Reusable buffer for `copy_input` mode.
    copy_buf: Vec<A::In>,
    steps_run: usize,
    collect_stats: bool,
    last_stats: RunStats,
}

impl<A: Analytics> Scheduler<A> {
    /// Create a scheduler (paper Table 1, runtime function 2).
    pub fn new(analytics: A, args: SchedArgs<A::Extra>, pool: SharedPool) -> SmartResult<Self> {
        if args.num_threads == 0 {
            return Err(SmartError::BadArgs("num_threads must be positive".into()));
        }
        if args.num_threads > pool.size() {
            return Err(SmartError::BadArgs(format!(
                "num_threads {} exceeds pool size {}",
                args.num_threads,
                pool.size()
            )));
        }
        if args.chunk_size == 0 {
            return Err(SmartError::BadArgs("chunk_size must be positive".into()));
        }
        if args.num_iters == 0 {
            return Err(SmartError::BadArgs("num_iters must be positive".into()));
        }
        let distribute_map = args.extra_data.is_some() || args.num_iters > 1;
        Ok(Scheduler {
            analytics,
            args,
            pool,
            global_combination: true,
            distribute_map,
            combine_strategy: CombineStrategy::default(),
            com_map: ComMap::new(),
            extra_processed: false,
            copy_buf: Vec::new(),
            steps_run: 0,
            collect_stats: false,
            last_stats: RunStats::default(),
        })
    }

    /// Enable per-phase timing collection (see [`RunStats`]).
    pub fn set_collect_stats(&mut self, flag: bool) {
        self.collect_stats = flag;
    }

    /// Phase timings from the most recent `run*` call (empty unless
    /// [`set_collect_stats`](Self::set_collect_stats) was enabled).
    pub fn last_stats(&self) -> &RunStats {
        &self.last_stats
    }

    /// Enable/disable global combination (paper Table 1, function 3).
    /// Disabled, each rank keeps a local result — the "MapReduce pipeline"
    /// pattern where a preprocessing job's output feeds the next job.
    pub fn set_global_combination(&mut self, flag: bool) {
        self.global_combination = flag;
    }

    /// Override the combination-map distribution rule (see field docs).
    pub fn set_distribute_map(&mut self, flag: bool) {
        self.distribute_map = flag;
    }

    /// Choose how local and global combination execute (see
    /// [`CombineStrategy`]). All strategies produce identical combination
    /// maps; this knob exists for ablation and for falling back to the
    /// paper's serial pipeline.
    pub fn set_combine_strategy(&mut self, strategy: CombineStrategy) {
        self.combine_strategy = strategy;
    }

    /// The active combination strategy.
    pub fn combine_strategy(&self) -> CombineStrategy {
        self.combine_strategy
    }

    /// The combination map (paper Table 1, function 4).
    pub fn combination_map(&self) -> &ComMap<A::Red> {
        &self.com_map
    }

    /// The analytics implementation.
    pub fn analytics(&self) -> &A {
        &self.analytics
    }

    /// The scheduler arguments.
    pub fn args(&self) -> &SchedArgs<A::Extra> {
        &self.args
    }

    /// Time-steps processed so far.
    pub fn steps_run(&self) -> usize {
        self.steps_run
    }

    /// Clear analytics state between independent datasets (e.g. per
    /// time-step window analytics). Extra data will be re-processed on the
    /// next run.
    pub fn reset(&mut self) {
        self.com_map.clear();
        self.extra_processed = false;
    }

    /// Single-key analytics on one input block, single rank
    /// (paper Table 1, function 5).
    pub fn run(&mut self, input: &[A::In], out: &mut [A::Out]) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.run_inner(None, &[(self.args.partition_offset, input)], out, false)
    }

    /// Multi-key analytics on one input block, single rank
    /// (paper Table 1, function 6).
    pub fn run2(&mut self, input: &[A::In], out: &mut [A::Out]) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.run_inner(None, &[(self.args.partition_offset, input)], out, true)
    }

    /// Single-key analytics with global combination across the cluster.
    pub fn run_dist(
        &mut self,
        comm: &mut Communicator,
        input: &[A::In],
        out: &mut [A::Out],
    ) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.run_inner(Some(comm), &[(self.args.partition_offset, input)], out, false)
    }

    /// Multi-key analytics with global combination across the cluster.
    pub fn run2_dist(
        &mut self,
        comm: &mut Communicator,
        input: &[A::In],
        out: &mut [A::Out],
    ) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.run_inner(Some(comm), &[(self.args.partition_offset, input)], out, true)
    }

    /// Single-key analytics over several `(global_offset, data)` partitions
    /// in one pass, with global combination across the cluster.
    ///
    /// An in-transit staging rank serves multiple producers: each time-step
    /// it holds one partition per producer, all of which must contribute to
    /// a *single* local + global combination (running them as separate steps
    /// would pay the global collective once per producer and would break
    /// iterative analytics, whose `post_combine` must see the whole step).
    /// An empty `parts` slice still participates in the collectives — needed
    /// when streams end raggedly and an idle stager must keep its peers'
    /// global combination from deadlocking.
    pub fn run_parts_dist(
        &mut self,
        comm: &mut Communicator,
        parts: &[(usize, &[A::In])],
        out: &mut [A::Out],
    ) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.run_inner(Some(comm), parts, out, false)
    }

    /// Multi-key variant of [`run_parts_dist`](Self::run_parts_dist).
    pub fn run2_parts_dist(
        &mut self,
        comm: &mut Communicator,
        parts: &[(usize, &[A::In])],
        out: &mut [A::Out],
    ) -> SmartResult<()>
    where
        A::In: Clone,
    {
        self.run_inner(Some(comm), parts, out, true)
    }

    /// Algorithm 1, plus the Algorithm 2 early-emission extension.
    ///
    /// `parts` is a set of `(global_offset, data)` partitions all processed
    /// within one step: the ordinary in-situ paths pass exactly one, an
    /// in-transit stager passes one per producer it serves (possibly zero
    /// once streams start ending raggedly).
    fn run_inner(
        &mut self,
        mut comm: Option<&mut Communicator>,
        parts: &[(usize, &[A::In])],
        out: &mut [A::Out],
        multi_key: bool,
    ) -> SmartResult<()>
    where
        A::In: Clone,
    {
        let chunk_size = self.args.chunk_size;
        for &(_, input) in parts {
            if input.len() % chunk_size != 0 {
                return Err(SmartError::ChunkMismatch { input_len: input.len(), chunk_size });
            }
        }

        // Fig. 9 baseline: the extra input copy the zero-copy design avoids.
        // Parts are copied back-to-back into one buffer; their slices are
        // re-cut from recorded ranges once the buffer stops growing.
        let mut copy_buf = std::mem::take(&mut self.copy_buf);
        let copied_parts: Vec<(usize, &[A::In])>;
        let parts: &[(usize, &[A::In])] = if self.args.copy_input {
            copy_buf.clear();
            let mut ranges = Vec::with_capacity(parts.len());
            for &(offset, input) in parts {
                let start = copy_buf.len();
                copy_buf.extend_from_slice(input);
                ranges.push((offset, start..copy_buf.len()));
            }
            copied_parts = ranges.into_iter().map(|(offset, r)| (offset, &copy_buf[r])).collect();
            &copied_parts
        } else {
            parts
        };

        // Algorithm 1 line 1: seed the combination map once.
        if !self.extra_processed {
            self.analytics.process_extra_data(self.args.extra_data.as_ref(), &mut self.com_map);
            self.extra_processed = true;
        }

        let nthreads = self.args.num_threads;
        // Early emission needs an output buffer to emit into.
        let emission_enabled = !self.args.disable_trigger && !out.is_empty();
        let out_shared = SharedSlice::new(out);

        let collect_stats = self.collect_stats;
        let mut stats =
            RunStats { split_busy: vec![Duration::ZERO; nthreads], ..Default::default() };

        for _iter in 0..self.args.num_iters {
            // Lines 4/6: distribute the combination map to reduction maps.
            let analytics = &self.analytics;
            let com_ref = &self.com_map;
            let distribute = self.distribute_map;
            let out_ref = &out_shared;

            // Reduction phase (lines 7–10 + Algorithm 2): one split per
            // thread, each with a private reduction map; partitions run one
            // after another over the same pool, feeding a single local
            // combination below.
            let mut partial_maps: Vec<RedMap<A::Red>> = Vec::with_capacity(nthreads * parts.len());
            for &(offset, data) in parts {
                let worker = |tid: usize| -> SmartResult<(RedMap<A::Red>, Duration)> {
                    let started = Instant::now();
                    let range = split_range(data.len(), nthreads, tid, chunk_size);
                    let mut red: RedMap<A::Red> =
                        if distribute { com_ref.clone() } else { RedMap::new() };
                    let mut keys: Vec<Key> = Vec::with_capacity(8);
                    let mut cursor = range.start;
                    while cursor + chunk_size <= range.end {
                        let chunk = Chunk {
                            local_start: cursor,
                            global_start: offset + cursor,
                            len: chunk_size,
                        };
                        keys.clear();
                        if multi_key {
                            analytics.gen_keys(&chunk, data, com_ref, &mut keys);
                        } else {
                            keys.push(analytics.gen_key(&chunk, data, com_ref));
                        }
                        for &key in &keys {
                            let slot = red.slot_mut(key);
                            analytics.accumulate(&chunk, data, key, slot);
                            let Some(obj) = slot.as_ref() else {
                                return Err(SmartError::EmptyAccumulate { key });
                            };
                            if emission_enabled && obj.trigger() {
                                let idx = usize::try_from(key)
                                    .ok()
                                    .filter(|&i| i < out_ref.len())
                                    .ok_or(SmartError::KeyOutOfRange {
                                        key,
                                        out_len: out_ref.len(),
                                    })?;
                                // SAFETY: splits own disjoint contiguous element
                                // ranges, so only the split holding *all* of a
                                // key's contributions can trigger it — one
                                // writer per index (see shared_slice docs).
                                unsafe { out_ref.with_mut(idx, |o| analytics.convert(obj, o)) };
                                red.remove(key);
                            }
                        }
                        cursor += chunk_size;
                    }
                    Ok((red, started.elapsed()))
                };
                let partials = self.pool.try_run_on_workers(nthreads, worker)?;
                for (tid, partial) in partials.into_iter().enumerate() {
                    let (partial, busy) = partial?;
                    stats.split_busy[tid] += busy;
                    partial_maps.push(partial);
                }
            }

            // Local combination (lines 11–17) into a fresh *delta* map.
            // The delta holds only this iteration's contribution, so the
            // global combination below never re-sums state that previous
            // steps already made global (the combination map persists
            // across time-steps — k-means tracks centroids through the
            // whole simulation).
            let combine_started = Instant::now();
            let mut delta: RedMap<A::Red> = match self.combine_strategy {
                CombineStrategy::Serial => {
                    let mut d = RedMap::new();
                    for partial in partial_maps {
                        Self::merge_into(&self.analytics, partial, &mut d);
                    }
                    d
                }
                CombineStrategy::Tree | CombineStrategy::Sharded => {
                    self.tree_merge_partials(partial_maps)?
                }
            };
            stats.local_merge_busy += combine_started.elapsed();

            // Global combination of the delta (same merge, across ranks);
            // afterwards every rank holds the same global delta (line 4's
            // redistribution for the next iteration). Entries travel as
            // key-sorted vectors merged with a streaming join — no RedMap
            // rebuild inside the collective.
            if self.global_combination {
                if let Some(comm) = comm.as_deref_mut() {
                    let global_started = Instant::now();
                    let bytes_before = comm.sent_bytes();
                    let mut local = delta.drain_entries();
                    local.sort_unstable_by_key(|&(k, _)| k);
                    if collect_stats {
                        stats.global_bytes += smart_wire::encoded_len(&local).unwrap_or(0);
                    }
                    let analytics = &self.analytics;
                    let merged = match self.combine_strategy {
                        CombineStrategy::Serial | CombineStrategy::Tree => {
                            comm.allreduce(local, |acc, incoming| {
                                smart_comm::merge_sorted_entries(acc, incoming, |com, red| {
                                    analytics.merge(&red, com)
                                })
                            })?
                        }
                        CombineStrategy::Sharded => {
                            comm.allreduce_sharded(local, |com, red| analytics.merge(&red, com))?
                        }
                    };
                    delta = RedMap::from_entries(merged);
                    stats.comm_bytes += comm.sent_bytes() - bytes_before;
                    stats.global_comm_busy += global_started.elapsed();
                }
            }

            // Fold the (now global) delta into the persistent combination
            // map. For distribution-on analytics the com map already holds
            // these keys with reset distributive fields, so the merge adds
            // exactly one global contribution.
            Self::merge_into(&self.analytics, delta, &mut self.com_map);

            // Line 18.
            self.analytics.post_combine(&mut self.com_map);
            stats.combine_busy += combine_started.elapsed();
            stats.iters += 1;
        }

        // Lines 20–23: convert remaining reduction objects into the output.
        if !out_shared.is_empty() {
            for (key, obj) in self.com_map.iter() {
                let idx = usize::try_from(key)
                    .ok()
                    .filter(|&i| i < out_shared.len())
                    .ok_or(SmartError::KeyOutOfRange { key, out_len: out_shared.len() })?;
                // SAFETY: the parallel phase is over; this thread is the
                // only writer.
                unsafe { out_shared.with_mut(idx, |o| self.analytics.convert(obj, o)) };
            }
        }

        self.copy_buf = copy_buf;
        self.steps_run += 1;
        self.last_stats = stats;
        Ok(())
    }

    /// Layer 1 of the combination pipeline: merge per-thread partial maps
    /// pairwise on the pool, ⌈log₂ t⌉ rounds with pairs merging
    /// concurrently. Each pair reuses the larger map's allocation as the
    /// destination and pre-reserves for the smaller one, so no merge grows
    /// through intermediate capacities (see `RedMap::reserve`).
    fn tree_merge_partials(&self, parts: Vec<RedMap<A::Red>>) -> SmartResult<RedMap<A::Red>> {
        let analytics = &self.analytics;
        let merged = self.pool.tree_reduce(parts, |a, b| {
            let (mut dst, src) = if a.capacity() >= b.capacity() { (a, b) } else { (b, a) };
            Self::merge_into(analytics, src, &mut dst);
            dst
        })?;
        Ok(merged.unwrap_or_default())
    }

    /// Merge `src` into `dst` with the analytics' merge operator
    /// (lines 11–17: merge when the key exists, move otherwise).
    fn merge_into(analytics: &A, mut src: RedMap<A::Red>, dst: &mut ComMap<A::Red>) {
        // Pre-size: src arrives in hash order; letting dst grow through
        // smaller capacities turns that order quadratic (see RedMap::reserve).
        dst.reserve(src.len());
        for (key, obj) in src.drain_entries() {
            match dst.get_mut(key) {
                Some(com) => analytics.merge(&obj, com),
                None => {
                    dst.insert(key, obj);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::RedObj;
    use serde::{Deserialize, Serialize};
    use smart_pool::shared_pool;

    /// Sum of squares under key 0 — the simplest single-key analytics.
    #[derive(Clone, Serialize, Deserialize, Default, Debug, PartialEq)]
    struct Acc {
        sum: f64,
        n: u64,
    }
    impl RedObj for Acc {}

    struct SumSquares;
    impl Analytics for SumSquares {
        type In = f64;
        type Red = Acc;
        type Out = f64;
        type Extra = ();
        fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<Acc>) {
            let a = obj.get_or_insert_with(Acc::default);
            a.sum += d[c.local_start] * d[c.local_start];
            a.n += 1;
        }
        fn merge(&self, red: &Acc, com: &mut Acc) {
            com.sum += red.sum;
            com.n += red.n;
        }
        fn convert(&self, obj: &Acc, out: &mut f64) {
            *out = obj.sum;
        }
    }

    fn pool4() -> SharedPool {
        shared_pool(4).unwrap()
    }

    #[test]
    fn sum_squares_matches_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 * 0.1).collect();
        let expected: f64 = data.iter().map(|x| x * x).sum();
        let mut s = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
        let mut out = [0.0f64];
        s.run(&data, &mut out).unwrap();
        assert!((out[0] - expected).abs() < 1e-9);
        assert_eq!(s.combination_map().get(0).unwrap().n, 1000);
        assert_eq!(s.steps_run(), 1);
    }

    #[test]
    fn multiple_steps_accumulate_without_double_counting() {
        // Non-iterative analytics must NOT distribute the combination map,
        // or re-running over the next time-step would re-merge old counts
        // once per thread.
        let mut s = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
        let step: Vec<f64> = vec![2.0; 100];
        let mut out = [0.0f64];
        for t in 1..=5 {
            s.run(&step, &mut out).unwrap();
            assert!((out[0] - (t as f64) * 400.0).abs() < 1e-9, "step {t}: {}", out[0]);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut s = Scheduler::new(SumSquares, SchedArgs::new(2, 1), pool4()).unwrap();
        let mut out = [0.0f64];
        s.run(&[1.0, 2.0], &mut out).unwrap();
        s.reset();
        s.run(&[3.0], &mut out).unwrap();
        assert!((out[0] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn chunk_mismatch_is_an_error() {
        let mut s = Scheduler::new(SumSquares, SchedArgs::new(2, 3), pool4()).unwrap();
        let err = s.run(&[1.0; 10], &mut []).unwrap_err();
        assert!(matches!(err, SmartError::ChunkMismatch { input_len: 10, chunk_size: 3 }));
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(matches!(
            Scheduler::new(SumSquares, SchedArgs::new(0, 1), pool4()),
            Err(SmartError::BadArgs(_))
        ));
        assert!(matches!(
            Scheduler::new(SumSquares, SchedArgs::new(9, 1), pool4()),
            Err(SmartError::BadArgs(_))
        ));
        assert!(matches!(
            Scheduler::new(SumSquares, SchedArgs::new(1, 0), pool4()),
            Err(SmartError::BadArgs(_))
        ));
        assert!(matches!(
            Scheduler::new(SumSquares, SchedArgs::new(1, 1).with_iters(0), pool4()),
            Err(SmartError::BadArgs(_))
        ));
    }

    #[test]
    fn copy_input_mode_gives_identical_results() {
        let data: Vec<f64> = (0..512).map(|i| (i % 13) as f64).collect();
        let mut a = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
        let mut b = Scheduler::new(SumSquares, SchedArgs::new(4, 1).with_copy_input(true), pool4())
            .unwrap();
        let (mut oa, mut ob) = ([0.0f64], [0.0f64]);
        a.run(&data, &mut oa).unwrap();
        b.run(&data, &mut ob).unwrap();
        assert_eq!(oa, ob);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let data: Vec<f64> = (0..999).map(|i| (i as f64).sin()).collect();
        let mut reference = None;
        for threads in 1..=4 {
            let mut s = Scheduler::new(SumSquares, SchedArgs::new(threads, 1), pool4()).unwrap();
            let mut out = [0.0f64];
            s.run(&data, &mut out).unwrap();
            match reference {
                None => reference = Some(out[0]),
                // FP addition order differs per thread count; tolerance.
                Some(r) => assert!((out[0] - r).abs() < 1e-9),
            }
        }
    }

    /// Per-element pass-through keyed by global position, with trigger —
    /// exercises run2, early emission, and positional keys.
    #[derive(Clone, Serialize, Deserialize, Debug)]
    struct One {
        v: f64,
        done: bool,
    }
    impl RedObj for One {
        fn trigger(&self) -> bool {
            self.done
        }
    }

    struct Identity;
    impl Analytics for Identity {
        type In = f64;
        type Red = One;
        type Out = f64;
        type Extra = ();
        fn gen_keys(&self, c: &Chunk, _d: &[f64], _com: &ComMap<One>, keys: &mut Vec<Key>) {
            keys.push(c.global_start as Key);
        }
        fn accumulate(&self, c: &Chunk, d: &[f64], _k: Key, obj: &mut Option<One>) {
            *obj = Some(One { v: d[c.local_start], done: true });
        }
        fn merge(&self, red: &One, com: &mut One) {
            com.v = red.v;
            com.done = true;
        }
        fn convert(&self, obj: &One, out: &mut f64) {
            *out = obj.v;
        }
    }

    #[test]
    fn early_emission_writes_every_slot_and_empties_map() {
        let data: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let mut s = Scheduler::new(Identity, SchedArgs::new(4, 1), pool4()).unwrap();
        let mut out = vec![-1.0f64; 256];
        s.run2(&data, &mut out).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64));
        // Everything triggered: nothing left in the combination map.
        assert_eq!(s.combination_map().len(), 0);
    }

    #[test]
    fn disabled_trigger_routes_through_combination_map() {
        let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mut s =
            Scheduler::new(Identity, SchedArgs::new(4, 1).with_trigger_disabled(true), pool4())
                .unwrap();
        let mut out = vec![-1.0f64; 64];
        s.run2(&data, &mut out).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64));
        // Nothing was emitted early: all 64 objects reached the map.
        assert_eq!(s.combination_map().len(), 64);
    }

    #[test]
    fn key_out_of_range_is_an_error() {
        let data = vec![1.0f64; 8];
        let mut s = Scheduler::new(Identity, SchedArgs::new(2, 1), pool4()).unwrap();
        let mut out = vec![0.0f64; 4]; // too small for keys 4..8
        let err = s.run2(&data, &mut out).unwrap_err();
        assert!(matches!(err, SmartError::KeyOutOfRange { .. }));
    }

    #[test]
    fn empty_out_skips_conversion_and_emission() {
        let data = vec![1.0f64; 16];
        let mut s = Scheduler::new(Identity, SchedArgs::new(2, 1), pool4()).unwrap();
        s.run2(&data, &mut []).unwrap();
        // No out buffer → no early emission → objects stay in the map.
        assert_eq!(s.combination_map().len(), 16);
    }

    /// Iterative analytics with extra data: counts how many times
    /// post_combine ran and checks map distribution.
    #[derive(Clone, Serialize, Deserialize, Debug, Default)]
    struct Iter {
        base: f64,
        adds: u64,
        rounds: u64,
    }
    impl RedObj for Iter {}

    struct Iterative;
    impl Analytics for Iterative {
        type In = f64;
        type Red = Iter;
        type Out = f64;
        type Extra = f64;
        fn accumulate(&self, _c: &Chunk, _d: &[f64], _k: Key, obj: &mut Option<Iter>) {
            obj.as_mut().expect("distributed from extra data").adds += 1;
        }
        fn merge(&self, red: &Iter, com: &mut Iter) {
            com.adds += red.adds;
        }
        fn process_extra_data(&self, extra: Option<&f64>, com: &mut ComMap<Iter>) {
            com.insert(0, Iter { base: *extra.expect("extra required"), adds: 0, rounds: 0 });
        }
        fn post_combine(&self, com: &mut ComMap<Iter>) {
            let obj = com.get_mut(0).expect("key 0 present");
            obj.rounds += 1;
            obj.adds = 0; // reset distributive field, like k-means update()
        }
        fn convert(&self, obj: &Iter, out: &mut f64) {
            *out = obj.base + obj.rounds as f64;
        }
    }

    #[test]
    fn iterations_distribute_and_post_combine() {
        let data = vec![0.0f64; 40];
        let args = SchedArgs::new(4, 1).with_extra(7.0).with_iters(3);
        let mut s = Scheduler::new(Iterative, args, pool4()).unwrap();
        let mut out = [0.0f64];
        s.run(&data, &mut out).unwrap();
        // base 7 + 3 post_combine rounds
        assert_eq!(out[0], 10.0);
    }

    #[test]
    fn global_combination_across_ranks_matches_single_rank() {
        let data: Vec<f64> = (0..800).map(|i| (i % 10) as f64).collect();
        // Single-rank reference.
        let mut reference = [0.0f64];
        Scheduler::new(SumSquares, SchedArgs::new(2, 1), pool4())
            .unwrap()
            .run(&data, &mut reference)
            .unwrap();

        for ranks in [2, 3, 4] {
            let data = data.clone();
            let results = smart_comm::run_cluster(ranks, |mut comm| {
                let pool = shared_pool(2).unwrap();
                let share = data.len() / comm.size();
                let lo = comm.rank() * share;
                let hi = if comm.rank() + 1 == comm.size() { data.len() } else { lo + share };
                let mut s = Scheduler::new(SumSquares, SchedArgs::new(2, 1), pool).unwrap();
                let mut out = [0.0f64];
                s.run_dist(&mut comm, &data[lo..hi], &mut out).unwrap();
                out[0]
            });
            for r in &results {
                assert!((r - reference[0]).abs() < 1e-6, "ranks={ranks}: {r} vs {}", reference[0]);
            }
        }
    }

    #[test]
    fn disabling_global_combination_keeps_results_local() {
        let results = smart_comm::run_cluster(2, |mut comm| {
            let pool = shared_pool(1).unwrap();
            let mut s = Scheduler::new(SumSquares, SchedArgs::new(1, 1), pool).unwrap();
            s.set_global_combination(false);
            let data = vec![(comm.rank() + 1) as f64; 10];
            let mut out = [0.0f64];
            s.run_dist(&mut comm, &data, &mut out).unwrap();
            out[0]
        });
        assert!((results[0] - 10.0).abs() < 1e-12);
        assert!((results[1] - 40.0).abs() < 1e-12);
    }

    /// Wire-serialize a scheduler's combination map in canonical (sorted)
    /// order — the "bit-identical" comparison form.
    fn map_bytes<A: Analytics>(s: &Scheduler<A>) -> Vec<u8> {
        smart_wire::to_bytes(&s.combination_map().to_sorted_entries()).unwrap()
    }

    const STRATEGIES: [CombineStrategy; 3] =
        [CombineStrategy::Serial, CombineStrategy::Tree, CombineStrategy::Sharded];

    #[test]
    fn combine_strategies_produce_bit_identical_maps() {
        // Integer-valued f64 data keeps every merge order exact, so the
        // strategy comparison really is bit-for-bit.
        let data: Vec<f64> = (0..1000).map(|i| (i % 13) as f64).collect();

        // Sum-of-squares (single-key).
        let mut reference: Option<(Vec<u8>, f64)> = None;
        for strategy in STRATEGIES {
            let mut s = Scheduler::new(SumSquares, SchedArgs::new(4, 1), pool4()).unwrap();
            s.set_combine_strategy(strategy);
            let mut out = [0.0f64];
            s.run(&data, &mut out).unwrap();
            let got = (map_bytes(&s), out[0]);
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "SumSquares, {strategy:?}"),
            }
        }

        // Identity (multi-key, trigger disabled so the map retains entries).
        let mut reference: Option<Vec<u8>> = None;
        for strategy in STRATEGIES {
            let mut s =
                Scheduler::new(Identity, SchedArgs::new(4, 1).with_trigger_disabled(true), pool4())
                    .unwrap();
            s.set_combine_strategy(strategy);
            let mut out = vec![0.0f64; 64];
            s.run2(&data[..64], &mut out).unwrap();
            match &reference {
                None => reference = Some(map_bytes(&s)),
                Some(r) => assert_eq!(&map_bytes(&s), r, "Identity, {strategy:?}"),
            }
        }

        // Iterative (extra data + post_combine + map distribution).
        let mut reference: Option<(Vec<u8>, f64)> = None;
        for strategy in STRATEGIES {
            let args = SchedArgs::new(4, 1).with_extra(7.0).with_iters(3);
            let mut s = Scheduler::new(Iterative, args, pool4()).unwrap();
            s.set_combine_strategy(strategy);
            let mut out = [0.0f64];
            s.run(&data[..40], &mut out).unwrap();
            let got = (map_bytes(&s), out[0]);
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "Iterative, {strategy:?}"),
            }
        }
    }

    #[test]
    fn combine_strategies_agree_across_ranks() {
        let data: Vec<f64> = (0..600).map(|i| (i % 7) as f64).collect();
        let mut reference: Option<Vec<(Vec<u8>, f64)>> = None;
        for strategy in STRATEGIES {
            let data = data.clone();
            let per_rank = smart_comm::run_cluster(3, move |mut comm| {
                let pool = shared_pool(2).unwrap();
                let share = data.len() / comm.size();
                let lo = comm.rank() * share;
                let hi = if comm.rank() + 1 == comm.size() { data.len() } else { lo + share };
                let mut s = Scheduler::new(SumSquares, SchedArgs::new(2, 1), pool).unwrap();
                s.set_combine_strategy(strategy);
                let mut out = [0.0f64];
                s.run_dist(&mut comm, &data[lo..hi], &mut out).unwrap();
                (map_bytes(&s), out[0])
            });
            // Global combination: every rank ends with the same map.
            for rank in 1..per_rank.len() {
                assert_eq!(per_rank[rank], per_rank[0], "{strategy:?} rank {rank} diverged");
            }
            match &reference {
                None => reference = Some(per_rank),
                Some(r) => assert_eq!(&per_rank, r, "{strategy:?} diverged from Serial"),
            }
        }
    }

    #[test]
    fn sharded_strategy_bounds_per_rank_comm_bytes() {
        // Identical 64-key inputs on every rank, so each rank's serialized
        // delta equals the serialized global map and the ≤ 2x sharded
        // traffic bound can be checked directly against RunStats.
        for ranks in [2, 4, 5] {
            let stats: Vec<RunStats> = smart_comm::run_cluster(ranks, |mut comm| {
                let pool = shared_pool(2).unwrap();
                let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
                let mut s = Scheduler::new(Identity, SchedArgs::new(2, 1), pool).unwrap();
                s.set_combine_strategy(CombineStrategy::Sharded);
                s.set_collect_stats(true);
                // Keep every entry in the map: no out buffer, no emission.
                s.run2_dist(&mut comm, &data, &mut []).unwrap();
                s.last_stats().clone()
            });
            for (rank, st) in stats.iter().enumerate() {
                assert!(st.global_bytes > 0, "stats should have been collected");
                let slack = 64 * ranks as u64;
                assert!(
                    st.comm_bytes <= 2 * st.global_bytes + slack,
                    "ranks={ranks} rank={rank}: sent {} bytes > 2x map ({}) + {slack}",
                    st.comm_bytes,
                    st.global_bytes
                );
                assert!(
                    st.local_merge_busy + st.global_comm_busy
                        <= st.combine_busy + Duration::from_millis(1)
                );
            }
        }
    }

    #[test]
    fn partition_offset_feeds_global_keys() {
        // Two ranks, identity analytics keyed by global position: outputs
        // land at global indices on each rank.
        let results = smart_comm::run_cluster(2, |mut comm| {
            let pool = shared_pool(1).unwrap();
            let args = SchedArgs::new(1, 1).with_partition(comm.rank() * 4, 8);
            let mut s = Scheduler::new(Identity, args, pool).unwrap();
            let data = vec![comm.rank() as f64 + 1.0; 4];
            let mut out = vec![0.0f64; 8];
            s.run2_dist(&mut comm, &data, &mut out).unwrap();
            out
        });
        // Early emission fills only local keys; nothing remains in the map
        // (identity triggers immediately), so each rank sees its own slice.
        assert_eq!(results[0][..4], [1.0, 1.0, 1.0, 1.0]);
        assert_eq!(results[1][4..], [2.0, 2.0, 2.0, 2.0]);
    }
}
