//! Core side of the spilling shuffle: the reduction phase drains
//! over-budget reduction maps into sorted on-disk runs (`smart-spill`'s
//! SMRN format), and the combination phase merges those runs with the
//! resident tails through a loser-tree k-way merge — feeding the exact
//! same downstream machinery (global combination strategies, output
//! conversion) a fully resident run would.
//!
//! ## Why the result is bit-identical to the in-memory run
//!
//! Spilling fragments one key's contributions across several runs plus a
//! resident tail, where the in-memory path folds them into a single
//! reduction object as chunks arrive. [`crate::Analytics::spill_safe`]
//! makes the two equal: accumulation must distribute over `merge` on
//! integer-carried state (the repo's cross-strategy bit-identity
//! convention), so folding the fragments at merge time — in the
//! deterministic order the loser tree hands them out (run-name order,
//! which is (partition, thread, sequence) creation order, then shell
//! order for tails) — reproduces the resident object exactly.
//!
//! ## Merge orientation
//!
//! Sources are ordered oldest-first: the previous combination run (when
//! one exists) is source 0, then this iteration's runs, then the resident
//! tails. The first fragment seen for a key seeds the accumulator and
//! every later fragment merges in as `merge(incoming, acc)` — the same
//! orientation as [`crate::combine`]'s `merge_into`, where earlier state
//! is the combination object and later state the incoming delta.

use crate::api::{Analytics, Key, RedObj};
use crate::error::{SmartError, SmartResult};
use smart_spill::{LoserTree, RunCursor, RunError, RunSummary, SpillStore};

/// Per-step spilling configuration lent to the reduction phase.
pub(crate) struct SpillPlan<'a> {
    /// The scheduler's scratch run store.
    pub store: &'a SpillStore,
    /// Resident-byte threshold per worker shell: a shell crossing it is
    /// drained into a run at the next batch boundary. The scheduler sizes
    /// this as `budget / (2 * shells)` so all tails together stay under
    /// half the budget.
    pub shell_budget: usize,
    /// Monotonic per-iteration counter, embedded in run names so an
    /// iteration's runs sort after every earlier epoch's.
    pub epoch: u64,
}

/// Sortable run name for one drained shell fragment. Lexicographic order
/// over these names is (epoch, partition, thread, sequence) order — the
/// in-memory fold order local combination uses for shells.
pub(crate) fn run_name(epoch: u64, part: usize, tid: usize, seq: u64) -> String {
    format!("r-{epoch:06}-p{part:03}-t{tid:03}-{seq:04}.smrn")
}

/// Combination-run name: sorts after nothing (combination runs are opened
/// explicitly, never discovered via `run_names`).
pub(crate) fn com_name(seq: u64) -> String {
    format!("com-{seq:06}.smrn")
}

/// Write sorted `(key, object)` entries as one run. Values are
/// wire-encoded exactly as global combination would encode them, so the
/// run's canonical payload is byte-identical to
/// `smart_wire::to_bytes(&entries)`.
pub(crate) fn write_run<R: RedObj>(
    store: &SpillStore,
    name: &str,
    entries: &[(Key, R)],
) -> Result<RunSummary, RunError> {
    let mut w = store.writer(name)?;
    for (key, obj) in entries {
        let bytes = smart_wire::to_bytes(obj)?;
        w.record(*key, &bytes)?;
    }
    w.finish()
}

/// One sorted source of `(key, reduction object)` records for the k-way
/// merge: an on-disk run cursor, or an in-memory sorted entry vector (a
/// resident shell tail, or a globally combined delta).
pub(crate) enum Src<R> {
    /// A validated on-disk run, streamed through a fixed window.
    Run(RunCursor),
    /// Sorted resident entries; `Option` so values move out during the
    /// fold without shifting the vector.
    Mem { entries: Vec<(Key, Option<R>)>, pos: usize },
}

impl<R: RedObj> Src<R> {
    /// Wrap a sorted entry vector as a merge source.
    pub(crate) fn mem(entries: Vec<(Key, R)>) -> Src<R> {
        Src::Mem { entries: entries.into_iter().map(|(k, v)| (k, Some(v))).collect(), pos: 0 }
    }

    /// The current record's key, or `None` once exhausted.
    fn key(&self) -> Option<Key> {
        match self {
            Src::Run(c) => c.key(),
            Src::Mem { entries, pos } => entries.get(*pos).map(|e| e.0),
        }
    }

    /// Fold the current record into `acc` (seeding it when empty) and step
    /// to the next one. Run values merge through the zero-copy wire view
    /// ([`Analytics::merge_wire`]); memory values merge owned.
    fn fold_into<A: Analytics<Red = R>>(
        &mut self,
        analytics: &A,
        acc: &mut Option<R>,
    ) -> SmartResult<()> {
        match self {
            Src::Run(c) => {
                match acc {
                    Some(com) => {
                        let mut de = smart_wire::Deserializer::new(c.value());
                        analytics
                            .merge_wire(&mut de, com)
                            .map_err(|e| SmartError::Spill(RunError::from(e)))?;
                    }
                    None => {
                        let obj = smart_wire::from_bytes(c.value())
                            .map_err(|e| SmartError::Spill(RunError::from(e)))?;
                        *acc = Some(obj);
                    }
                }
                c.advance().map_err(SmartError::Spill)?;
            }
            Src::Mem { entries, pos } => {
                // PANIC-FREE: callers fold only sources whose key() is Some, so pos indexes a live entry.
                if let Some(obj) = entries[*pos].1.take() {
                    match acc {
                        Some(com) => analytics.merge(&obj, com),
                        None => *acc = Some(obj),
                    }
                }
                *pos += 1;
            }
        }
        Ok(())
    }
}

/// Merge `sources` (each sorted ascending by key) into a single sorted
/// stream of combined `(key, object)` records, delivered to `emit`.
/// Same-key records across sources fold in source order — the loser tree
/// breaks key ties by source index — which is the deterministic order the
/// in-memory combination uses.
// PANIC-FREE: every index into `sources` is a leaf index of the loser tree,
// which was built over exactly sources.len() seated leaves.
pub(crate) fn merge_sources<A: Analytics>(
    analytics: &A,
    mut sources: Vec<Src<A::Red>>,
    emit: &mut dyn FnMut(Key, A::Red) -> SmartResult<()>,
) -> SmartResult<()> {
    if sources.is_empty() {
        return Ok(());
    }
    // Cursors open positioned before their first record.
    for src in &mut sources {
        if let Src::Run(c) = src {
            c.advance().map_err(SmartError::Spill)?;
        }
    }
    let k = sources.len();
    let mut tree = {
        let mut key = |s: usize| sources[s].key();
        LoserTree::new(k, &mut key)
    };
    loop {
        // PANIC-FREE: the tree was built over exactly k seated sources, so the winner indexes one.
        let mut w = tree.winner();
        let Some(cur) = sources[w].key() else { break };
        let mut acc: Option<A::Red> = None;
        loop {
            // PANIC-FREE: winner indexes a seated source (see above).
            sources[w].fold_into(analytics, &mut acc)?;
            {
                let mut key = |s: usize| sources[s].key();
                tree.replay(&mut key);
            }
            w = tree.winner();
            // PANIC-FREE: winner indexes a seated source (see above).
            if sources[w].key() != Some(cur) {
                break;
            }
        }
        if let Some(obj) = acc {
            emit(cur, obj)?;
        }
    }
    Ok(())
}

/// [`merge_sources`] into a sorted entry vector — the distributed path,
/// which must hold this rank's delta resident to run the global
/// combination collectives over it.
pub(crate) fn merge_to_entries<A: Analytics>(
    analytics: &A,
    sources: Vec<Src<A::Red>>,
) -> SmartResult<Vec<(Key, A::Red)>> {
    let mut out = Vec::new();
    merge_sources(analytics, sources, &mut |key, obj| {
        out.push((key, obj));
        Ok(())
    })?;
    Ok(out)
}

/// [`merge_sources`] streamed straight into a new combination run — the
/// single-rank path, where no stage of the merged result is ever resident.
/// Returns the committed run's summary.
pub(crate) fn merge_to_run<A: Analytics>(
    analytics: &A,
    sources: Vec<Src<A::Red>>,
    store: &SpillStore,
    name: &str,
) -> SmartResult<RunSummary> {
    let mut writer = store.writer(name).map_err(SmartError::Spill)?;
    merge_sources(analytics, sources, &mut |key, obj| {
        let bytes = smart_wire::to_bytes(&obj).map_err(|e| SmartError::Spill(RunError::from(e)))?;
        writer.record(key, &bytes).map_err(SmartError::Spill)?;
        Ok(())
    })?;
    writer.finish().map_err(SmartError::Spill)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Chunk, ComMap};
    use serde::{Deserialize, Serialize};

    #[derive(Clone, Serialize, Deserialize, Debug, PartialEq)]
    struct Cnt(u64);
    impl RedObj for Cnt {}

    struct Count;
    impl Analytics for Count {
        type In = u64;
        type Red = Cnt;
        type Out = u64;
        type Extra = ();
        fn accumulate(&self, _c: &Chunk, _d: &[u64], _k: Key, obj: &mut Option<Cnt>) {
            obj.get_or_insert(Cnt(0)).0 += 1;
        }
        fn merge(&self, red: &Cnt, com: &mut Cnt) {
            com.0 += red.0;
        }
        fn spill_safe(&self) -> bool {
            true
        }
    }

    fn collect(sources: Vec<Src<Cnt>>) -> Vec<(Key, Cnt)> {
        merge_to_entries(&Count, sources).unwrap()
    }

    #[test]
    fn run_names_sort_in_fold_order() {
        let mut names = vec![
            run_name(1, 0, 0, 2),
            run_name(0, 1, 0, 1),
            run_name(0, 0, 1, 1),
            run_name(0, 0, 0, 1),
        ];
        let want = names.clone();
        names.sort_unstable();
        assert_eq!(names, [want[3].clone(), want[2].clone(), want[1].clone(), want[0].clone()]);
    }

    #[test]
    fn mem_only_merge_combines_duplicates_in_source_order() {
        let a = Src::mem(vec![(1, Cnt(1)), (3, Cnt(10))]);
        let b = Src::mem(vec![(1, Cnt(2)), (2, Cnt(5)), (3, Cnt(20))]);
        let got = collect(vec![a, b]);
        assert_eq!(got, [(1, Cnt(3)), (2, Cnt(5)), (3, Cnt(30))]);
    }

    #[test]
    fn run_and_mem_sources_merge_bit_identically_to_resident_fold() {
        let store = SpillStore::scratch("core-spill-test").unwrap();
        // Two runs + one tail, overlapping keys.
        write_run(&store, "r-000000-p000-t000-0001.smrn", &[(0, Cnt(1)), (2, Cnt(2))]).unwrap();
        write_run(&store, "r-000000-p000-t001-0001.smrn", &[(0, Cnt(4)), (5, Cnt(8))]).unwrap();
        let sources = vec![
            Src::Run(store.open("r-000000-p000-t000-0001.smrn").unwrap()),
            Src::Run(store.open("r-000000-p000-t001-0001.smrn").unwrap()),
            Src::mem(vec![(2, Cnt(16)), (5, Cnt(32))]),
        ];
        let got = collect(sources);
        // The resident fold: merge everything into one map, sort.
        let mut map: ComMap<Cnt> = ComMap::new();
        for (k, v) in
            [(0, Cnt(1)), (2, Cnt(2)), (0, Cnt(4)), (5, Cnt(8)), (2, Cnt(16)), (5, Cnt(32))]
        {
            match map.get_mut(k) {
                Some(com) => Count.merge(&v, com),
                None => {
                    map.insert(k, v);
                }
            }
        }
        assert_eq!(
            smart_wire::to_bytes(&got).unwrap(),
            smart_wire::to_bytes(&map.to_sorted_entries()).unwrap()
        );
        store.cleanup();
    }

    #[test]
    fn merge_to_run_streams_and_round_trips() {
        let store = SpillStore::scratch("core-spill-roundtrip").unwrap();
        let sources = vec![
            Src::mem(vec![(1, Cnt(1)), (2, Cnt(2))]),
            Src::mem(vec![(2, Cnt(3)), (9, Cnt(9))]),
        ];
        let summary = merge_to_run(&Count, sources, &store, "com-000000.smrn").unwrap();
        assert_eq!(summary.records, 3);
        let mut cursor = store.open("com-000000.smrn").unwrap();
        let mut got = Vec::new();
        while cursor.advance().unwrap() {
            let key = cursor.key().unwrap();
            got.push((key, smart_wire::from_bytes::<Cnt>(cursor.value()).unwrap()));
        }
        assert_eq!(got, [(1, Cnt(1)), (2, Cnt(5)), (9, Cnt(9))]);
        store.cleanup();
    }

    #[test]
    fn empty_sources_emit_nothing() {
        assert!(collect(vec![]).is_empty());
        assert!(collect(vec![Src::mem(vec![])]).is_empty());
    }
}
