//! Equivalence proptests for the zero-copy combine path:
//! [`fold_entries_view`] (validate once, merge borrowed entries in place)
//! must produce **bit-identical** results to the owned reference path
//! (decode the incoming vector, then `merge_sorted_entries`), for both the
//! default [`Analytics::merge_wire`] and a hand-rolled override.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use smart_core::{fold_entries_view, Analytics, Chunk, ComMap, Key};

/// A heap-bearing reduction object: the shape (length-prefixed vector +
/// scalar) that makes the view path worth having.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct VecRed {
    w: Vec<f64>,
    n: u64,
}

impl smart_core::RedObj for VecRed {}

/// Test analytics with the *default* (decode + merge) wire merge.
struct DefaultWire;

/// Test analytics with a hand-rolled in-place wire merge, mirroring the
/// k-means override: fold `w` element-wise off the wire, add `n`.
struct OverrideWire;

fn merge_vecred(red: &VecRed, com: &mut VecRed) {
    for (c, r) in com.w.iter_mut().zip(&red.w) {
        *c += r;
    }
    com.n += red.n;
}

macro_rules! vecred_analytics_boilerplate {
    () => {
        type In = f64;
        type Red = VecRed;
        type Out = u64;
        type Extra = ();

        fn gen_key(&self, _c: &Chunk, _d: &[f64], _m: &ComMap<VecRed>) -> Key {
            0
        }
        fn accumulate(&self, _c: &Chunk, _d: &[f64], _k: Key, _o: &mut Option<VecRed>) {}
        fn merge(&self, red: &VecRed, com: &mut VecRed) {
            merge_vecred(red, com);
        }
        fn convert(&self, obj: &VecRed, out: &mut u64) {
            *out = obj.n;
        }
    };
}

impl Analytics for DefaultWire {
    vecred_analytics_boilerplate!();
}

impl Analytics for OverrideWire {
    vecred_analytics_boilerplate!();

    fn merge_wire(
        &self,
        de: &mut smart_wire::Deserializer<'_>,
        com: &mut VecRed,
    ) -> smart_wire::Result<()> {
        let len = u64::deserialize(&mut *de)? as usize;
        let folded = len.min(com.w.len());
        for c in com.w.iter_mut().take(folded) {
            *c += f64::deserialize(&mut *de)?;
        }
        de.skip((len - folded).saturating_mul(8))?;
        com.n += u64::deserialize(&mut *de)?;
        Ok(())
    }
}

/// Key-sorted, key-unique entry vectors — the invariant `global_combine`
/// maintains (entries are drained from a map and sorted).
fn entries_strategy() -> impl Strategy<Value = Vec<(Key, VecRed)>> {
    proptest::collection::vec(
        (-50i64..50, proptest::collection::vec(-1e6f64..1e6, 0..5), 0u64..1_000_000),
        0..24,
    )
    .prop_map(|raw| {
        let mut out: Vec<(Key, VecRed)> =
            raw.into_iter().map(|(k, w, n)| (k, VecRed { w, n })).collect();
        out.sort_by_key(|&(k, _)| k);
        out.dedup_by_key(|&mut (k, _)| k);
        out
    })
}

/// The owned reference: decode the payload, then streaming-merge the two
/// sorted vectors — exactly what `global_combine_owned` does per hop.
fn owned_reference<A: Analytics<Red = VecRed>>(
    analytics: &A,
    acc: Vec<(Key, VecRed)>,
    bytes: &[u8],
) -> Vec<(Key, VecRed)> {
    let inc: Vec<(Key, VecRed)> = smart_wire::from_bytes(bytes).unwrap();
    smart_comm::merge_sorted_entries(acc, inc, |com, red| analytics.merge(&red, com))
}

proptest! {
    /// View path ≡ owned path for the default `merge_wire`, asserted on the
    /// encoded bytes so the equivalence is bit-level, not just `PartialEq`.
    #[test]
    fn view_matches_owned_decode_with_default_merge_wire(
        acc in entries_strategy(),
        inc in entries_strategy(),
    ) {
        let bytes = smart_wire::to_bytes(&inc).unwrap();
        let owned = owned_reference(&DefaultWire, acc.clone(), &bytes);
        let viewed = fold_entries_view(&DefaultWire, acc, &bytes).unwrap();
        prop_assert_eq!(
            smart_wire::to_bytes(&viewed).unwrap(),
            smart_wire::to_bytes(&owned).unwrap()
        );
    }

    /// The hand-rolled in-place override must not change results either.
    #[test]
    fn view_matches_owned_decode_with_override_merge_wire(
        acc in entries_strategy(),
        inc in entries_strategy(),
    ) {
        let bytes = smart_wire::to_bytes(&inc).unwrap();
        let owned = owned_reference(&OverrideWire, acc.clone(), &bytes);
        let viewed = fold_entries_view(&OverrideWire, acc, &bytes).unwrap();
        prop_assert_eq!(
            smart_wire::to_bytes(&viewed).unwrap(),
            smart_wire::to_bytes(&owned).unwrap()
        );
    }

    /// Folding several payloads in sequence (what a binomial reduce hop
    /// chain does) stays equivalent too.
    #[test]
    fn chained_folds_match_chained_owned_merges(
        acc in entries_strategy(),
        payloads in proptest::collection::vec(entries_strategy(), 1..4),
    ) {
        let mut owned = acc.clone();
        let mut viewed = acc;
        for p in &payloads {
            let bytes = smart_wire::to_bytes(p).unwrap();
            owned = owned_reference(&OverrideWire, owned, &bytes);
            viewed = fold_entries_view(&OverrideWire, viewed, &bytes).unwrap();
        }
        prop_assert_eq!(
            smart_wire::to_bytes(&viewed).unwrap(),
            smart_wire::to_bytes(&owned).unwrap()
        );
    }
}

#[test]
fn truncated_payload_is_an_error_not_a_panic() {
    let inc = vec![(3i64, VecRed { w: vec![1.0, 2.0], n: 9 })];
    let bytes = smart_wire::to_bytes(&inc).unwrap();
    for cut in 0..bytes.len() {
        if cut == 0 {
            continue; // an empty slice fails cursor construction below anyway
        }
        let res = fold_entries_view(&OverrideWire, Vec::new(), &bytes[..cut]);
        assert!(res.is_err(), "truncation at {cut} must surface as a codec error");
    }
    assert!(fold_entries_view(&OverrideWire, Vec::new(), &[]).is_err());
}

#[test]
fn trailing_garbage_is_rejected() {
    let inc = vec![(1i64, VecRed { w: vec![], n: 1 })];
    let mut bytes = smart_wire::to_bytes(&inc).unwrap();
    bytes.push(0xAB);
    assert!(fold_entries_view(&OverrideWire, Vec::new(), &bytes).is_err());
}
