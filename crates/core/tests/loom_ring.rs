//! Model-checked circular-buffer invariants (space-sharing mode, paper
//! §3.2): produce/consume keeps FIFO order and never loses or duplicates a
//! time-step; a full buffer blocks the feeder without deadlock; close wakes
//! everyone.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p smart-core --test loom_ring`
#![cfg(loom)]

use smart_core::space::CircularBuffer;
use smart_core::SmartError;
use smart_sync::{model, thread, Arc};

#[test]
fn produce_consume_preserves_every_item_in_order() {
    model::check(|| {
        let buf = Arc::new(CircularBuffer::new(1));
        let b2 = Arc::clone(&buf);
        let producer = thread::spawn(move || {
            for v in 0..3u32 {
                b2.push(v).unwrap();
            }
            b2.close();
        });
        let mut seen = Vec::new();
        while let Some(v) = buf.pop() {
            seen.push(v);
        }
        producer.join().unwrap();
        // Capacity 1 forces the producer to block between pushes on most
        // schedules; no interleaving may drop, duplicate, or reorder.
        assert_eq!(seen, vec![0, 1, 2]);
    });
}

#[test]
fn blocking_feed_resumes_after_pop() {
    model::check(|| {
        let buf = Arc::new(CircularBuffer::new(1));
        buf.push(1u32).unwrap();
        let b2 = Arc::clone(&buf);
        let producer = thread::spawn(move || b2.push(2).unwrap());
        // The producer is (on some schedules) parked on a full buffer; this
        // pop must wake it on every schedule or the join deadlocks.
        assert_eq!(buf.pop(), Some(1));
        producer.join().unwrap();
        assert_eq!(buf.pop(), Some(2));
    });
}

#[test]
fn close_wakes_blocked_producer_and_consumer() {
    model::check(|| {
        let buf: Arc<CircularBuffer<u32>> = Arc::new(CircularBuffer::new(1));
        buf.push(7).unwrap();
        let b2 = Arc::clone(&buf);
        let producer = thread::spawn(move || b2.push(8)); // full → may park
        let b3 = Arc::clone(&buf);
        let closer = thread::spawn(move || b3.close());
        closer.join().unwrap();
        // After close, a parked producer must wake with StreamClosed (never
        // hang), and the consumer drains then sees end-of-stream.
        match producer.join().unwrap() {
            Ok(()) => (),                        // pushed before close won the race
            Err(SmartError::StreamClosed) => (), // woken by close
            Err(e) => panic!("unexpected error: {e:?}"),
        }
        while buf.pop().is_some() {}
        assert_eq!(buf.pop(), None);
    });
}

#[test]
fn two_consumers_split_the_stream_without_duplication() {
    model::check(|| {
        let buf = Arc::new(CircularBuffer::new(2));
        buf.push(1u32).unwrap();
        buf.push(2).unwrap();
        buf.close();
        let b2 = Arc::clone(&buf);
        let other = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = b2.pop() {
                got.push(v);
            }
            got
        });
        let mut mine = Vec::new();
        while let Some(v) = buf.pop() {
            mine.push(v);
        }
        let mut all = other.join().unwrap();
        all.extend(mine);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2]);
    });
}
