//! Model-checked `SharedSlice` contract: disjoint-index parallel writes are
//! accepted on every schedule, and the loom access tracker turns an
//! overlapping write — the bug class the early-emission proof rules out —
//! into a hard failure instead of silent UB.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p smart-core --test loom_shared_slice`
#![cfg(loom)]

use smart_core::SharedSlice;
use smart_sync::{model, thread};

#[test]
fn disjoint_writes_pass_on_all_schedules() {
    model::check(|| {
        let mut buf = [0usize; 4];
        {
            let shared = SharedSlice::new(&mut buf);
            let shared = &shared;
            thread::scope(|s| {
                for t in 0..2 {
                    s.spawn(move || {
                        for i in (t..4).step_by(2) {
                            // SAFETY: threads write interleaved, disjoint
                            // indices (t, t+2), verified by the tracker.
                            unsafe { shared.write(i, i + 1) };
                        }
                    });
                }
            });
        }
        assert_eq!(buf, [1, 2, 3, 4]);
    });
}

#[test]
fn tracker_flags_overlapping_writes() {
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        model::check(|| {
            let mut buf = [0usize; 1];
            let shared = SharedSlice::new(&mut buf);
            let shared = &shared;
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(move || {
                        // SAFETY: intentionally NOT disjoint — this is the
                        // seeded violation the model checker must catch.
                        unsafe { shared.write(0, 9) };
                    });
                }
            });
        });
    }))
    .expect_err("overlapping writes must fail the model");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .unwrap_or_default();
    assert!(msg.contains("overlapping concurrent mutable access"), "unexpected: {msg}");
}

#[test]
fn with_mut_sees_prior_writes_after_join() {
    model::check(|| {
        let mut buf = [10u32, 20];
        {
            let shared = SharedSlice::new(&mut buf);
            let shared = &shared;
            thread::scope(|s| {
                s.spawn(move || {
                    // SAFETY: this thread owns index 0 exclusively.
                    unsafe { shared.with_mut(0, |v| *v += 1) };
                });
                // SAFETY: the spawning thread owns index 1 exclusively.
                unsafe { shared.with_mut(1, |v| *v += 2) };
            });
        }
        assert_eq!(buf, [11, 22]);
    });
}
