//! Allocation-count assertion for the zero-copy combine path (ISSUE PR 8
//! acceptance): folding an encoded payload whose keys all already exist in
//! the accumulator must do **no per-entry allocation** — a constant number
//! of allocations regardless of entry count — while the owned decode path
//! allocates at least once per heap-bearing entry.
//!
//! This lives in its own integration-test binary (one `#[test]`) so the
//! process-global allocation counters are not polluted by concurrent test
//! threads.

use serde::{Deserialize, Serialize};
use smart_core::{fold_entries_view, Analytics, Chunk, ComMap, Key};
use smart_memtrack::MemScope;

#[global_allocator]
static ALLOC: smart_memtrack::TrackingAlloc = smart_memtrack::TrackingAlloc::new();

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct VecRed {
    w: Vec<f64>,
    n: u64,
}

impl smart_core::RedObj for VecRed {}

struct InPlace;

impl Analytics for InPlace {
    type In = f64;
    type Red = VecRed;
    type Out = u64;
    type Extra = ();

    fn gen_key(&self, _c: &Chunk, _d: &[f64], _m: &ComMap<VecRed>) -> Key {
        0
    }
    fn accumulate(&self, _c: &Chunk, _d: &[f64], _k: Key, _o: &mut Option<VecRed>) {}
    fn merge(&self, red: &VecRed, com: &mut VecRed) {
        for (c, r) in com.w.iter_mut().zip(&red.w) {
            *c += r;
        }
        com.n += red.n;
    }
    fn convert(&self, obj: &VecRed, out: &mut u64) {
        *out = obj.n;
    }

    fn merge_wire(
        &self,
        de: &mut smart_wire::Deserializer<'_>,
        com: &mut VecRed,
    ) -> smart_wire::Result<()> {
        let len = u64::deserialize(&mut *de)? as usize;
        let folded = len.min(com.w.len());
        for c in com.w.iter_mut().take(folded) {
            *c += f64::deserialize(&mut *de)?;
        }
        de.skip((len - folded).saturating_mul(8))?;
        com.n += u64::deserialize(&mut *de)?;
        Ok(())
    }
}

fn entries(n: usize) -> Vec<(Key, VecRed)> {
    (0..n).map(|k| (k as Key, VecRed { w: vec![k as f64, 1.0, -2.5], n: k as u64 })).collect()
}

#[test]
fn view_fold_is_allocation_free_per_entry() {
    const N: usize = 4096;
    let an = InPlace;
    let acc = entries(N);
    let bytes = smart_wire::to_bytes(&acc).unwrap();

    // Owned reference: decoding the incoming vector allocates at least one
    // `Vec<f64>` per entry plus the outer vector.
    let scope = MemScope::begin();
    let decoded: Vec<(Key, VecRed)> = smart_wire::from_bytes(&bytes).unwrap();
    let owned_allocs = scope.finish().alloc_calls;
    assert!(
        owned_allocs >= N,
        "owned decode of {N} heap-bearing entries made only {owned_allocs} allocations"
    );
    drop(decoded);

    // View path over the same payload, every key already present: merges
    // happen in place through `merge_wire`, so the only allocation is the
    // output vector itself (plus harness noise — bound it well below one
    // allocation per entry).
    let scope = MemScope::begin();
    let out = fold_entries_view(&an, acc, &bytes).unwrap();
    let view_allocs = scope.finish().alloc_calls;
    assert_eq!(out.len(), N);
    assert!(
        view_allocs < 16,
        "view fold of {N} matched entries should allocate O(1) times, made {view_allocs}"
    );

    // The fold really did merge: w[0] doubled, n doubled.
    assert_eq!(out[3].1.w[0], 6.0);
    assert_eq!(out[3].1.n, 6);
}
