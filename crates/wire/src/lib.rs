//! # smart-wire
//!
//! A compact, non-self-describing binary serialization format used by the
//! Smart runtime to ship reduction objects between ranks during global
//! combination, and by the MiniSpark baseline to model inter-stage
//! serialization.
//!
//! The format is deliberately simple and fast:
//!
//! * all multi-byte integers and floats are little-endian, fixed width;
//! * sequences, maps, strings and byte strings are prefixed with a `u64`
//!   element/byte count;
//! * `Option` is a one-byte tag (`0`/`1`) followed by the value;
//! * enum variants are encoded as a `u32` variant index followed by the
//!   variant payload;
//! * structs and tuples are the concatenation of their fields (no framing).
//!
//! Because the format is not self-describing, a value can only be decoded
//! with the exact type it was encoded from. That is always the case inside
//! the Smart runtime: the analytics type fixes the reduction-object type on
//! every rank.
//!
//! ```
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Cluster { centroid: Vec<f64>, size: u64 }
//!
//! let c = Cluster { centroid: vec![1.0, 2.0], size: 7 };
//! let bytes = smart_wire::to_bytes(&c).unwrap();
//! let back: Cluster = smart_wire::from_bytes(&bytes).unwrap();
//! assert_eq!(back, c);
//! ```

mod count;
mod de;
mod error;
pub mod runs;
mod ser;
mod view;

pub use count::encoded_len;
pub use de::{from_bytes, Deserializer};
pub use error::{Error, Result};
pub use ser::{to_bytes, to_writer, Serializer};
pub use view::EntriesCursor;

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::{BTreeMap, HashMap};

    fn roundtrip<T>(v: &T) -> T
    where
        T: Serialize + serde::de::DeserializeOwned,
    {
        let bytes = to_bytes(v).expect("serialize");
        from_bytes(&bytes).expect("deserialize")
    }

    #[test]
    fn primitives_roundtrip() {
        assert!(roundtrip(&true));
        assert!(!roundtrip(&false));
        assert_eq!(roundtrip(&0u8), 0u8);
        assert_eq!(roundtrip(&255u8), 255u8);
        assert_eq!(roundtrip(&-1i8), -1i8);
        assert_eq!(roundtrip(&u16::MAX), u16::MAX);
        assert_eq!(roundtrip(&i16::MIN), i16::MIN);
        assert_eq!(roundtrip(&u32::MAX), u32::MAX);
        assert_eq!(roundtrip(&i32::MIN), i32::MIN);
        assert_eq!(roundtrip(&u64::MAX), u64::MAX);
        assert_eq!(roundtrip(&i64::MIN), i64::MIN);
        assert_eq!(roundtrip(&u128::MAX), u128::MAX);
        assert_eq!(roundtrip(&i128::MIN), i128::MIN);
        assert_eq!(roundtrip(&1.5f32), 1.5f32);
        assert_eq!(roundtrip(&-2.25f64), -2.25f64);
        assert_eq!(roundtrip(&'λ'), 'λ');
    }

    #[test]
    fn float_nan_roundtrips_bitwise() {
        let v = f64::NAN;
        let back: f64 = roundtrip(&v);
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn strings_roundtrip() {
        assert_eq!(roundtrip(&String::new()), "");
        assert_eq!(roundtrip(&"hello".to_string()), "hello");
        assert_eq!(roundtrip(&"héllo wörld λ".to_string()), "héllo wörld λ");
    }

    #[test]
    fn vectors_roundtrip() {
        assert_eq!(roundtrip(&Vec::<u64>::new()), Vec::<u64>::new());
        let v: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        assert_eq!(roundtrip(&v), v);
        let nested = vec![vec![1u32, 2], vec![], vec![3]];
        assert_eq!(roundtrip(&nested), nested);
    }

    #[test]
    fn options_roundtrip() {
        assert_eq!(roundtrip(&Option::<u32>::None), None);
        assert_eq!(roundtrip(&Some(42u32)), Some(42));
        assert_eq!(roundtrip(&Some(Some(1u8))), Some(Some(1u8)));
        assert_eq!(roundtrip(&vec![Some(1u8), None, Some(3)]), vec![Some(1u8), None, Some(3)]);
    }

    #[test]
    fn tuples_roundtrip() {
        assert_eq!(roundtrip(&(1u8, 2u64, -3i32)), (1u8, 2u64, -3i32));
        assert_eq!(roundtrip(&((1u8, "x".to_string()), 2.5f64)), ((1u8, "x".to_string()), 2.5f64));
    }

    #[test]
    fn maps_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(1i64, vec![1.0f64, 2.0]);
        m.insert(-5i64, vec![]);
        assert_eq!(roundtrip(&m), m);

        let mut h = HashMap::new();
        h.insert("a".to_string(), 1u32);
        h.insert("b".to_string(), 2u32);
        assert_eq!(roundtrip(&h), h);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    struct Unit;

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    struct Newtype(u64);

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    struct Bucket {
        count: u64,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    struct Cluster {
        centroid: Vec<f64>,
        sum: Vec<f64>,
        size: u64,
        tag: Option<String>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    enum Shape {
        Empty,
        Point(f64),
        Pair(f64, f64),
        Labelled { name: String, dims: Vec<u32> },
    }

    #[test]
    fn structs_roundtrip() {
        assert_eq!(roundtrip(&Unit), Unit);
        assert_eq!(roundtrip(&Newtype(9)), Newtype(9));
        assert_eq!(roundtrip(&Bucket { count: 77 }), Bucket { count: 77 });
        let c =
            Cluster { centroid: vec![0.5, 1.5, 2.5], sum: vec![], size: 3, tag: Some("cl".into()) };
        assert_eq!(roundtrip(&c), c);
    }

    #[test]
    fn enums_roundtrip() {
        for s in [
            Shape::Empty,
            Shape::Point(1.25),
            Shape::Pair(1.0, -2.0),
            Shape::Labelled { name: "n".into(), dims: vec![1, 2, 3] },
        ] {
            assert_eq!(roundtrip(&s), s);
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = to_bytes(&12345u64).unwrap();
        for cut in 0..bytes.len() {
            let res: Result<u64> = from_bytes(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        let res: Result<u8> = from_bytes(&bytes);
        assert!(res.is_err());
    }

    #[test]
    fn invalid_bool_is_an_error() {
        let res: Result<bool> = from_bytes(&[2]);
        assert!(res.is_err());
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        // length 1, byte 0xFF
        let bytes = [1, 0, 0, 0, 0, 0, 0, 0, 0xFF];
        let res: Result<String> = from_bytes(&bytes);
        assert!(res.is_err());
    }

    #[test]
    fn absurd_length_prefix_is_an_error_not_a_huge_alloc() {
        // A sequence claiming u64::MAX elements with no payload must fail
        // cleanly instead of trying to reserve memory for them.
        let bytes = u64::MAX.to_le_bytes();
        let res: Result<Vec<u64>> = from_bytes(&bytes);
        assert!(res.is_err());
    }

    #[test]
    fn to_writer_matches_to_bytes() {
        let c = Cluster { centroid: vec![1.0], sum: vec![2.0], size: 1, tag: None };
        let a = to_bytes(&c).unwrap();
        let mut b = Vec::new();
        to_writer(&mut b, &c).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn encoding_is_compact() {
        // A Vec<f64> of n elements is exactly 8 (length) + 8n bytes.
        let v = vec![1.0f64; 100];
        assert_eq!(to_bytes(&v).unwrap().len(), 8 + 8 * 100);
        // Option<u8> is 1 tag byte + payload.
        assert_eq!(to_bytes(&Some(3u8)).unwrap().len(), 2);
        assert_eq!(to_bytes(&Option::<u8>::None).unwrap().len(), 1);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
        struct Mixed {
            a: i64,
            b: Vec<f64>,
            c: Option<String>,
            d: (u8, i32),
            e: Vec<(i64, u64)>,
        }

        fn mixed_strategy() -> impl Strategy<Value = Mixed> {
            (
                any::<i64>(),
                proptest::collection::vec(any::<f64>(), 0..20),
                proptest::option::of(".*"),
                (any::<u8>(), any::<i32>()),
                proptest::collection::vec((any::<i64>(), any::<u64>()), 0..10),
            )
                .prop_map(|(a, b, c, d, e)| Mixed { a, b, c, d, e })
        }

        proptest! {
            #[test]
            fn roundtrip_u64(v: u64) {
                prop_assert_eq!(roundtrip(&v), v);
            }

            #[test]
            fn roundtrip_i64(v: i64) {
                prop_assert_eq!(roundtrip(&v), v);
            }

            #[test]
            fn roundtrip_f64_bits(v: u64) {
                let f = f64::from_bits(v);
                let back: f64 = roundtrip(&f);
                prop_assert_eq!(back.to_bits(), v);
            }

            #[test]
            fn roundtrip_string(s in ".*") {
                prop_assert_eq!(roundtrip(&s.clone()), s);
            }

            #[test]
            fn roundtrip_vec_f64(v in proptest::collection::vec(any::<f64>(), 0..200)) {
                let back: Vec<f64> = roundtrip(&v);
                prop_assert_eq!(back.len(), v.len());
                for (a, b) in back.iter().zip(v.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }

            #[test]
            fn roundtrip_map(m in proptest::collection::btree_map(any::<i64>(), any::<u64>(), 0..50)) {
                prop_assert_eq!(roundtrip(&m.clone()), m);
            }

            #[test]
            fn roundtrip_mixed(v in mixed_strategy()) {
                // Compare through Debug formatting to get NaN-tolerant equality
                // for the float vector.
                let back = roundtrip(&v);
                prop_assert_eq!(format!("{back:?}"), format!("{v:?}"));
            }

            #[test]
            fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
                // Decoding garbage may fail but must never panic or OOM.
                let _ : Result<Vec<f64>> = from_bytes(&data);
                let _ : Result<(u64, String)> = from_bytes(&data);
                let _ : Result<BTreeMap<i64, Vec<u8>>> = from_bytes(&data);
            }
        }
    }
}
