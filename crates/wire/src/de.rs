//! The wire-format deserializer.

use crate::error::{Error, Result};
use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};

/// Deserialize a value of type `T` from `input`, requiring that the whole
/// input is consumed.
pub fn from_bytes<'de, T: de::Deserialize<'de>>(input: &'de [u8]) -> Result<T> {
    let mut de = Deserializer::new(input);
    let value = T::deserialize(&mut de)?;
    if de.input.is_empty() {
        Ok(value)
    } else {
        Err(Error::TrailingBytes(de.input.len()))
    }
}

/// Cursor-style deserializer over a borrowed byte slice.
pub struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    /// Create a deserializer reading from `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Deserializer { input }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    /// Advance the cursor past `n` bytes without interpreting them — for
    /// hand-written wire-view merges (`Analytics::merge_wire` overrides in `smart-core`)
    /// that know a field's encoded size and don't need its value.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n).map(|_| ())
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(Error::UnexpectedEof { needed: n, remaining: self.input.len() });
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    #[inline]
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let bytes = self.take(N)?;
        // `take` guarantees the slice has exactly N bytes.
        Ok(bytes.try_into().expect("take returned wrong length"))
    }

    /// Read a `u64` length prefix and sanity-check it against the remaining
    /// input so corrupt prefixes cannot trigger giant allocations.
    ///
    /// `min_elem_size` is the smallest possible encoded size of one element
    /// (1 byte covers everything except zero-sized elements, for which the
    /// caller passes 0 and no check is possible).
    #[inline]
    pub(crate) fn read_len(&mut self, min_elem_size: usize) -> Result<usize> {
        let declared = u64::from_le_bytes(self.take_array::<8>()?);
        if let Some(per_elem) = self.input.len().checked_div(min_elem_size) {
            let possible = per_elem as u64;
            if declared > possible {
                return Err(Error::LengthOverrun { declared, possible });
            }
        }
        Ok(declared as usize)
    }
}

macro_rules! de_le {
    ($name:ident, $visit:ident, $ty:ty, $n:expr) => {
        #[inline]
        fn $name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = <$ty>::from_le_bytes(self.take_array::<$n>()?);
            visitor.$visit(v)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take_array::<1>()?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(Error::InvalidBool(b)),
        }
    }

    de_le!(deserialize_i8, visit_i8, i8, 1);
    de_le!(deserialize_i16, visit_i16, i16, 2);
    de_le!(deserialize_i32, visit_i32, i32, 4);
    de_le!(deserialize_i64, visit_i64, i64, 8);
    de_le!(deserialize_i128, visit_i128, i128, 16);
    de_le!(deserialize_u8, visit_u8, u8, 1);
    de_le!(deserialize_u16, visit_u16, u16, 2);
    de_le!(deserialize_u32, visit_u32, u32, 4);
    de_le!(deserialize_u64, visit_u64, u64, 8);
    de_le!(deserialize_u128, visit_u128, u128, 16);
    de_le!(deserialize_f32, visit_f32, f32, 4);
    de_le!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let code = u32::from_le_bytes(self.take_array::<4>()?);
        let c = char::from_u32(code).ok_or(Error::InvalidChar(code))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len(1)?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| Error::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len(1)?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_bytes(bytes)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take_array::<1>()?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(Error::InvalidOptionTag(b)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len(1)?;
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len(1)?;
        visitor.visit_map(Counted { de: self, left: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self, left: fields.len() })
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Sequence/map access that yields exactly `left` elements.
struct Counted<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    left: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(&mut self, seed: T) -> Result<Option<T::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'de, 'a> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = Error;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self::Variant)> {
        let index = u32::from_le_bytes(self.de.take_array::<4>()?);
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de, 'a> de::VariantAccess<'de> for VariantAccess<'a, 'de> {
    type Error = Error;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self.de, left: len })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self.de, left: fields.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser::to_bytes;

    #[test]
    fn remaining_reports_cursor_position() {
        let bytes = to_bytes(&(1u8, 2u32)).unwrap();
        let mut de = Deserializer::new(&bytes);
        assert_eq!(de.remaining(), 5);
        let _: u8 = serde::Deserialize::deserialize(&mut de).unwrap();
        assert_eq!(de.remaining(), 4);
    }

    #[test]
    fn borrowed_str_deserializes_without_copy() {
        let bytes = to_bytes("zero-copy").unwrap();
        let s: &str = from_bytes(&bytes).unwrap();
        assert_eq!(s, "zero-copy");
    }

    #[test]
    fn zero_len_seq_ok() {
        let bytes = to_bytes(&Vec::<u64>::new()).unwrap();
        let v: Vec<u64> = from_bytes(&bytes).unwrap();
        assert!(v.is_empty());
    }
}
