//! Length-framed run records — the entry framing of spilled sorted runs.
//!
//! The wire format's entry payload (`u64` count, then `key` + value
//! concatenations — see [`crate::EntriesCursor`]) cannot be walked without
//! decoding, because values are not self-delimiting to a reader that does
//! not know the type. A *spilled run* must be mergeable by a streaming
//! reader that skips values it has no immediate use for, so each run entry
//! carries an explicit length frame:
//!
//! ```text
//! [rec_len: u32 LE][key: i64 LE][value: rec_len - 8 wire bytes]
//! ```
//!
//! `rec_len` counts the key plus the value (not itself), so a record
//! occupies `4 + rec_len` bytes. Stripping the `rec_len` prefixes and
//! prepending the record count as a `u64` reconstructs the exact canonical
//! entry payload `to_bytes(&Vec<(i64, V)>)` would produce — the identity
//! the out-of-core path's bit-for-bit equivalence rests on.
//!
//! [`frame_record`] appends one framed record; [`FramedCursor`] walks a
//! fully buffered record region (`smart-spill`'s streaming reader parses
//! the same framing incrementally from disk). The cursor is the merge-join
//! seam: each step yields the key and the *borrowed* value bytes, which the
//! caller merges in place via `Analytics::merge_wire` or decodes owned.

use crate::error::{Error, Result};

/// Bytes of the `rec_len` prefix.
pub const RECORD_PREFIX_LEN: usize = 4;
/// Bytes of the key inside the frame (counted by `rec_len`).
pub const RECORD_KEY_LEN: usize = 8;

/// Append one framed record (`[rec_len][key][value]`) to `out`.
///
/// `value` must already be wire-encoded. Fails with [`Error::LengthOverrun`]
/// when the value is too large for the `u32` frame (≥ 4 GiB — far beyond
/// any reduction object this runtime ships).
pub fn frame_record(out: &mut Vec<u8>, key: i64, value: &[u8]) -> Result<()> {
    let rec_len =
        u32::try_from(RECORD_KEY_LEN + value.len()).map_err(|_| Error::LengthOverrun {
            declared: (RECORD_KEY_LEN + value.len()) as u64,
            possible: u32::MAX as u64,
        })?;
    out.extend_from_slice(&rec_len.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(value);
    Ok(())
}

/// Bytes one framed record with `value_len` value bytes occupies.
pub fn framed_len(value_len: usize) -> usize {
    RECORD_PREFIX_LEN + RECORD_KEY_LEN + value_len
}

/// A validating cursor over a buffered region of framed records.
///
/// ```
/// use smart_wire::runs::{frame_record, FramedCursor};
///
/// let mut region = Vec::new();
/// frame_record(&mut region, 3, &smart_wire::to_bytes(&7u64).unwrap()).unwrap();
/// frame_record(&mut region, 9, &smart_wire::to_bytes(&1u64).unwrap()).unwrap();
/// let mut cur = FramedCursor::new(&region);
/// let mut keys = Vec::new();
/// while let Some((key, value)) = cur.next().unwrap() {
///     keys.push((key, smart_wire::from_bytes::<u64>(value).unwrap()));
/// }
/// assert_eq!(keys, [(3, 7), (9, 1)]);
/// ```
pub struct FramedCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FramedCursor<'a> {
    /// A cursor positioned at the first record of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        FramedCursor { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// The next record's key and borrowed value bytes, or `None` at the end
    /// of the region. A frame that overruns the region (torn tail, corrupt
    /// length) fails with a typed error instead of panicking.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(i64, &'a [u8])>> {
        if self.pos == self.bytes.len() {
            return Ok(None);
        }
        let header = read_frame_header(self.bytes, self.pos)?;
        let value_start = self.pos + RECORD_PREFIX_LEN + RECORD_KEY_LEN;
        let value_end = value_start + header.value_len;
        // PANIC-FREE: read_frame_header bounds-checked the whole record
        // against the region, so value_start..value_end is in range.
        let value = &self.bytes[value_start..value_end];
        self.pos = value_end;
        Ok(Some((header.key, value)))
    }
}

/// One parsed frame header.
pub struct FrameHeader {
    /// The record's key.
    pub key: i64,
    /// Wire bytes of the value that follows the key.
    pub value_len: usize,
}

/// Parse and bounds-check the record frame starting at `pos` of `bytes`.
/// Shared with the streaming run reader, whose buffered window obeys the
/// same framing.
pub fn read_frame_header(bytes: &[u8], pos: usize) -> Result<FrameHeader> {
    let remaining = bytes.len().saturating_sub(pos);
    let prefix_end = pos + RECORD_PREFIX_LEN;
    let Some(prefix) = bytes.get(pos..prefix_end) else {
        return Err(Error::UnexpectedEof { needed: RECORD_PREFIX_LEN, remaining });
    };
    // PANIC-FREE: `prefix` was sliced to exactly RECORD_PREFIX_LEN bytes.
    let rec_len = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]) as usize;
    if rec_len < RECORD_KEY_LEN {
        return Err(Error::LengthOverrun {
            declared: rec_len as u64,
            possible: RECORD_KEY_LEN as u64,
        });
    }
    let Some(body) = bytes.get(prefix_end..prefix_end + rec_len) else {
        return Err(Error::UnexpectedEof { needed: RECORD_PREFIX_LEN + rec_len, remaining });
    };
    // PANIC-FREE: `body` holds rec_len >= RECORD_KEY_LEN = 8 bytes.
    let key = i64::from_le_bytes([
        body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
    ]);
    Ok(FrameHeader { key, value_len: rec_len - RECORD_KEY_LEN })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(entries: &[(i64, u64)]) -> Vec<u8> {
        let mut out = Vec::new();
        for &(k, v) in entries {
            frame_record(&mut out, k, &crate::to_bytes(&v).unwrap()).unwrap();
        }
        out
    }

    #[test]
    fn roundtrip_preserves_keys_and_values() {
        let entries = [(-5i64, 1u64), (0, 2), (7, u64::MAX)];
        let bytes = region(&entries);
        let mut cur = FramedCursor::new(&bytes);
        let mut got = Vec::new();
        while let Some((k, v)) = cur.next().unwrap() {
            got.push((k, crate::from_bytes::<u64>(v).unwrap()));
        }
        assert_eq!(got, entries);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn stripping_frames_reconstructs_the_canonical_payload() {
        let entries = vec![(1i64, 10u64), (2, 20), (3, 30)];
        let framed = region(&entries);
        let mut canonical = (entries.len() as u64).to_le_bytes().to_vec();
        let mut cur = FramedCursor::new(&framed);
        while let Some((k, v)) = cur.next().unwrap() {
            canonical.extend_from_slice(&k.to_le_bytes());
            canonical.extend_from_slice(v);
        }
        assert_eq!(canonical, crate::to_bytes(&entries).unwrap());
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let bytes = region(&[(1, 2)]);
        for cut in 1..bytes.len() {
            let mut cur = FramedCursor::new(&bytes[..cut]);
            match cur.next() {
                Err(Error::UnexpectedEof { .. }) | Err(Error::LengthOverrun { .. }) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn undersized_rec_len_is_rejected() {
        let mut bytes = region(&[(1, 2)]);
        bytes[0..4].copy_from_slice(&3u32.to_le_bytes()); // < key length
        assert!(matches!(
            FramedCursor::new(&bytes).next(),
            Err(Error::LengthOverrun { declared: 3, .. })
        ));
    }

    #[test]
    fn framed_len_matches_frame_record() {
        let mut out = Vec::new();
        frame_record(&mut out, 1, &[0u8; 13]).unwrap();
        assert_eq!(out.len(), framed_len(13));
    }
}
