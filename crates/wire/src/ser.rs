//! The wire-format serializer.

use crate::error::{Error, Result};
use serde::ser::{self, Serialize};

/// Serialize `value` into a freshly allocated byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    to_writer(&mut out, value)?;
    Ok(out)
}

/// Serialize `value`, appending the encoding to `out`.
///
/// Appending lets callers batch many values (e.g. a whole combination map)
/// into one buffer without intermediate allocations.
pub fn to_writer<T: Serialize + ?Sized>(out: &mut Vec<u8>, value: &T) -> Result<()> {
    let mut ser = Serializer { out };
    value.serialize(&mut ser)
}

/// Streaming serializer writing the compact little-endian format into a
/// borrowed byte vector.
pub struct Serializer<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> Serializer<'a> {
    /// Create a serializer appending to `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        Serializer { out }
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    #[inline]
    fn put_len(&mut self, len: usize) {
        self.put(&(len as u64).to_le_bytes());
    }
}

macro_rules! ser_le {
    ($name:ident, $ty:ty) => {
        #[inline]
        fn $name(self, v: $ty) -> Result<()> {
            self.put(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl<'a, 'b> ser::Serializer for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    #[inline]
    fn serialize_bool(self, v: bool) -> Result<()> {
        self.put(&[v as u8]);
        Ok(())
    }

    ser_le!(serialize_i8, i8);
    ser_le!(serialize_i16, i16);
    ser_le!(serialize_i32, i32);
    ser_le!(serialize_i64, i64);
    ser_le!(serialize_i128, i128);
    ser_le!(serialize_u8, u8);
    ser_le!(serialize_u16, u16);
    ser_le!(serialize_u32, u32);
    ser_le!(serialize_u64, u64);
    ser_le!(serialize_u128, u128);
    ser_le!(serialize_f32, f32);
    ser_le!(serialize_f64, f64);

    #[inline]
    fn serialize_char(self, v: char) -> Result<()> {
        self.put(&(v as u32).to_le_bytes());
        Ok(())
    }

    #[inline]
    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_len(v.len());
        self.put(v.as_bytes());
        Ok(())
    }

    #[inline]
    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_len(v.len());
        self.put(v);
        Ok(())
    }

    #[inline]
    fn serialize_none(self) -> Result<()> {
        self.put(&[0]);
        Ok(())
    }

    #[inline]
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.put(&[1]);
        value.serialize(self)
    }

    #[inline]
    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    #[inline]
    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    #[inline]
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.put(&variant_index.to_le_bytes());
        Ok(())
    }

    #[inline]
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    #[inline]
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.put(&variant_index.to_le_bytes());
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len = len.ok_or(Error::LengthRequired)?;
        self.put_len(len);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.put(&variant_index.to_le_bytes());
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len = len.ok_or(Error::LengthRequired)?;
        self.put_len(len);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.put(&variant_index.to_le_bytes());
        Ok(self)
    }
}

impl<'a, 'b> ser::SerializeSeq for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeTuple for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeTupleStruct for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeTupleVariant for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeMap for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStruct for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStructVariant for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_little_endian() {
        assert_eq!(to_bytes(&0x0102_0304u32).unwrap(), vec![4, 3, 2, 1]);
        assert_eq!(to_bytes(&1u64).unwrap(), vec![1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn unit_encodes_to_nothing() {
        assert!(to_bytes(&()).unwrap().is_empty());
    }

    #[test]
    fn seq_has_length_prefix() {
        let v = vec![7u8, 8, 9];
        assert_eq!(to_bytes(&v).unwrap(), vec![3, 0, 0, 0, 0, 0, 0, 0, 7, 8, 9]);
    }

    #[test]
    fn appending_to_writer_preserves_existing_bytes() {
        let mut buf = vec![0xAA];
        to_writer(&mut buf, &1u8).unwrap();
        assert_eq!(buf, vec![0xAA, 1]);
    }
}
