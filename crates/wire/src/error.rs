//! Error type shared by the serializer and deserializer.

use std::fmt;

/// Result alias for wire-format operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while encoding or decoding the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Custom message raised by a `Serialize`/`Deserialize` impl.
    Message(String),
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes still required.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// Bytes were left over after the top-level value was decoded.
    TrailingBytes(usize),
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// An `Option` tag byte was neither 0 nor 1.
    InvalidOptionTag(u8),
    /// A `char` payload did not decode to a valid Unicode scalar value.
    InvalidChar(u32),
    /// A string payload was not valid UTF-8.
    InvalidUtf8,
    /// A length prefix exceeds the number of bytes remaining in the input,
    /// so the value cannot possibly decode; rejecting early avoids huge
    /// speculative allocations from corrupt prefixes.
    LengthOverrun {
        /// Declared element count.
        declared: u64,
        /// Upper bound on elements that could still fit.
        possible: u64,
    },
    /// The format is not self-describing: `deserialize_any` is unsupported.
    NotSelfDescribing,
    /// A sequence serializer was given no length up front.
    LengthRequired,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Message(m) => write!(f, "{m}"),
            Error::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of input: needed {needed} bytes, {remaining} remaining")
            }
            Error::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            Error::InvalidBool(b) => write!(f, "invalid bool byte {b:#x}"),
            Error::InvalidOptionTag(b) => write!(f, "invalid option tag byte {b:#x}"),
            Error::InvalidChar(c) => write!(f, "invalid char code point {c:#x}"),
            Error::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            Error::LengthOverrun { declared, possible } => {
                write!(f, "length prefix {declared} exceeds what the input can hold ({possible})")
            }
            Error::NotSelfDescribing => {
                write!(f, "smart-wire is not self-describing; deserialize_any is unsupported")
            }
            Error::LengthRequired => write!(f, "sequence length must be known up front"),
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::UnexpectedEof { needed: 8, remaining: 3 };
        let s = e.to_string();
        assert!(s.contains('8') && s.contains('3'));
        assert!(Error::InvalidBool(7).to_string().contains("0x7"));
        assert!(Error::TrailingBytes(2).to_string().contains('2'));
    }

    #[test]
    fn serde_custom_constructors_work() {
        let s: Error = serde::ser::Error::custom("boom");
        assert_eq!(s, Error::Message("boom".into()));
        let d: Error = serde::de::Error::custom("bang");
        assert_eq!(d, Error::Message("bang".into()));
    }
}
