//! A counting serializer: computes the exact encoded size of a value
//! without materializing the bytes.
//!
//! The scheduler's per-rank byte accounting (`RunStats::global_bytes`) used
//! to serialize every combination map a second time just to learn its
//! length; the collectives then serialized it again to actually ship it.
//! [`encoded_len`] walks the value with the same traversal as
//! [`crate::to_writer`] but only accumulates lengths, so stats collection
//! costs no allocation and no byte copying.

use crate::error::{Error, Result};
use serde::ser::{self, Serialize};

/// The exact number of bytes [`crate::to_bytes`] would produce for `value`.
pub fn encoded_len<T: Serialize + ?Sized>(value: &T) -> Result<u64> {
    let mut counter = Counter { count: 0 };
    value.serialize(&mut counter)?;
    Ok(counter.count)
}

/// Serializer that discards payloads and accumulates their encoded size.
/// Mirrors [`crate::Serializer`] byte for byte: every `put` there is an
/// `add` of the same length here.
struct Counter {
    count: u64,
}

impl Counter {
    #[inline]
    fn add(&mut self, n: usize) {
        self.count += n as u64;
    }
}

macro_rules! count_le {
    ($name:ident, $ty:ty) => {
        #[inline]
        fn $name(self, _v: $ty) -> Result<()> {
            self.add(std::mem::size_of::<$ty>());
            Ok(())
        }
    };
}

impl ser::Serializer for &mut Counter {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    #[inline]
    fn serialize_bool(self, _v: bool) -> Result<()> {
        self.add(1);
        Ok(())
    }

    count_le!(serialize_i8, i8);
    count_le!(serialize_i16, i16);
    count_le!(serialize_i32, i32);
    count_le!(serialize_i64, i64);
    count_le!(serialize_i128, i128);
    count_le!(serialize_u8, u8);
    count_le!(serialize_u16, u16);
    count_le!(serialize_u32, u32);
    count_le!(serialize_u64, u64);
    count_le!(serialize_u128, u128);
    count_le!(serialize_f32, f32);
    count_le!(serialize_f64, f64);

    #[inline]
    fn serialize_char(self, _v: char) -> Result<()> {
        self.add(4);
        Ok(())
    }

    #[inline]
    fn serialize_str(self, v: &str) -> Result<()> {
        self.add(8 + v.len());
        Ok(())
    }

    #[inline]
    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.add(8 + v.len());
        Ok(())
    }

    #[inline]
    fn serialize_none(self) -> Result<()> {
        self.add(1);
        Ok(())
    }

    #[inline]
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.add(1);
        value.serialize(self)
    }

    #[inline]
    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    #[inline]
    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    #[inline]
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.add(4);
        Ok(())
    }

    #[inline]
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    #[inline]
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.add(4);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let _ = len.ok_or(Error::LengthRequired)?;
        self.add(8);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.add(4);
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let _ = len.ok_or(Error::LengthRequired)?;
        self.add(8);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.add(4);
        Ok(self)
    }
}

impl ser::SerializeSeq for &mut Counter {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTuple for &mut Counter {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for &mut Counter {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for &mut Counter {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeMap for &mut Counter {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut Counter {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Counter {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_bytes;
    use serde::{Deserialize, Serialize};

    fn check<T: Serialize>(v: &T) {
        assert_eq!(encoded_len(v).unwrap(), to_bytes(v).unwrap().len() as u64);
    }

    #[test]
    fn matches_to_bytes_for_primitives() {
        check(&true);
        check(&0x1234u16);
        check(&-7i64);
        check(&1.5f64);
        check(&'λ');
        check(&());
    }

    #[test]
    fn matches_to_bytes_for_compounds() {
        check(&"hello wörld".to_string());
        check(&vec![1.0f64; 100]);
        check(&Some(3u8));
        check(&Option::<u8>::None);
        check(&(1u8, 2u64, -3i32));
        check(&vec![(1i64, vec![0.5f64; 3]), (2, vec![])]);
    }

    #[derive(Serialize, Deserialize)]
    enum Shape {
        Empty,
        Point(f64),
        Labelled { name: String, dims: Vec<u32> },
    }

    #[test]
    fn matches_to_bytes_for_enums_and_structs() {
        check(&Shape::Empty);
        check(&Shape::Point(2.5));
        check(&Shape::Labelled { name: "n".into(), dims: vec![1, 2, 3] });
    }

    #[test]
    fn combination_map_entries_cost_nothing_extra() {
        // The hot caller: a Vec<(key, red-obj)> block. 8-byte length prefix
        // + per entry (8-byte key + payload).
        let entries: Vec<(i64, (f64, u64))> = (0..50).map(|k| (k, (k as f64, 1))).collect();
        assert_eq!(encoded_len(&entries).unwrap(), 8 + 50 * (8 + 8 + 8));
        check(&entries);
    }
}
