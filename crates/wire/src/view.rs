//! Zero-copy views over encoded reduction-map entry buffers.
//!
//! Global combination ships reduction maps as encoded `Vec<(key, value)>`
//! payloads. The owned receive path decodes the whole vector — one
//! allocation for the vector plus one per heap-bearing value — before
//! merging it into the local map. [`EntriesCursor`] instead validates the
//! buffer's length prefix once and then walks it *in place*: the caller
//! reads each key, and either merges the borrowed value bytes directly into
//! an existing entry (no allocation at all) or decodes just that one value
//! when the key is new.
//!
//! The cursor is format-aware but type-agnostic: it understands the entry
//! framing (`u64` count, then `key` + value concatenations) and hands the
//! caller a positioned [`Deserializer`] for each value. The caller must
//! consume **exactly one encoded value** between keys — under- or
//! over-consuming desynchronizes the cursor, which the final
//! [`finish`](EntriesCursor::finish) check catches for the common case of
//! trailing bytes.

use crate::de::Deserializer;
use crate::error::{Error, Result};
use serde::Deserialize;

/// A validating cursor over an encoded `Vec<(i64, V)>` payload.
///
/// ```
/// use smart_wire::{to_bytes, EntriesCursor};
///
/// let bytes = to_bytes(&vec![(1i64, 10u64), (2, 20)]).unwrap();
/// let mut cur = EntriesCursor::new(&bytes).unwrap();
/// let mut sum = 0;
/// while let Some(key) = cur.next_key().unwrap() {
///     sum += key + cur.value::<u64>().unwrap() as i64;
/// }
/// cur.finish().unwrap();
/// assert_eq!(sum, 33);
/// ```
pub struct EntriesCursor<'a> {
    de: Deserializer<'a>,
    /// Entries not yet yielded.
    left: usize,
}

impl<'a> EntriesCursor<'a> {
    /// Validate the buffer's entry-count prefix and position the cursor on
    /// the first entry. The count is checked against the buffer size (an
    /// entry is at least an 8-byte key), so corrupt prefixes fail here
    /// instead of driving a runaway loop.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        let mut de = Deserializer::new(bytes);
        let left = de.read_len(8)?;
        Ok(EntriesCursor { de, left })
    }

    /// Entries not yet consumed.
    pub fn remaining(&self) -> usize {
        self.left
    }

    /// Read the next entry's key, or `None` after the last entry. After
    /// `Some(key)`, the caller must consume exactly one encoded value via
    /// [`value`](Self::value) or [`de`](Self::de) before calling this again.
    pub fn next_key(&mut self) -> Result<Option<i64>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        let key = i64::deserialize(&mut self.de)?;
        Ok(Some(key))
    }

    /// The deserializer positioned at the current entry's encoded value —
    /// for in-place merges that read value fields without allocating.
    pub fn de(&mut self) -> &mut Deserializer<'a> {
        &mut self.de
    }

    /// Decode the current entry's value into an owned `V` (the fallback for
    /// keys not yet present in the destination map).
    pub fn value<V: Deserialize<'a>>(&mut self) -> Result<V> {
        V::deserialize(&mut self.de)
    }

    /// Assert the buffer was fully consumed: every entry visited and no
    /// trailing bytes — the same strictness as [`from_bytes`](crate::from_bytes).
    pub fn finish(self) -> Result<()> {
        if self.left != 0 {
            return Err(Error::UnexpectedEof { needed: self.left, remaining: 0 });
        }
        let trailing = self.de.remaining();
        if trailing != 0 {
            return Err(Error::TrailingBytes(trailing));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser::to_bytes;

    #[test]
    fn cursor_walks_all_entries_in_order() {
        let entries = vec![(-5i64, vec![1.0f64, 2.0]), (0, vec![]), (7, vec![3.5])];
        let bytes = to_bytes(&entries).unwrap();
        let mut cur = EntriesCursor::new(&bytes).unwrap();
        assert_eq!(cur.remaining(), 3);
        let mut got = Vec::new();
        while let Some(key) = cur.next_key().unwrap() {
            got.push((key, cur.value::<Vec<f64>>().unwrap()));
        }
        cur.finish().unwrap();
        assert_eq!(got, entries);
    }

    #[test]
    fn empty_entry_list_is_fine() {
        let bytes = to_bytes(&Vec::<(i64, u64)>::new()).unwrap();
        let mut cur = EntriesCursor::new(&bytes).unwrap();
        assert_eq!(cur.next_key().unwrap(), None);
        cur.finish().unwrap();
    }

    #[test]
    fn absurd_count_prefix_is_rejected_at_construction() {
        let mut bytes = to_bytes(&vec![(1i64, 2u64)]).unwrap();
        bytes[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(EntriesCursor::new(&bytes), Err(Error::LengthOverrun { .. })));
    }

    #[test]
    fn truncated_value_surfaces_as_eof() {
        let bytes = to_bytes(&vec![(1i64, 42u64)]).unwrap();
        let mut cur = EntriesCursor::new(&bytes[..bytes.len() - 4]).unwrap();
        assert_eq!(cur.next_key().unwrap(), Some(1));
        assert!(matches!(cur.value::<u64>(), Err(Error::UnexpectedEof { .. })));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut bytes = to_bytes(&vec![(1i64, 42u64)]).unwrap();
        bytes.push(0xAB);
        let mut cur = EntriesCursor::new(&bytes).unwrap();
        while let Some(_k) = cur.next_key().unwrap() {
            let _: u64 = cur.value().unwrap();
        }
        assert!(matches!(cur.finish(), Err(Error::TrailingBytes(1))));
    }

    #[test]
    fn unvisited_entries_fail_finish() {
        let bytes = to_bytes(&vec![(1i64, 2u64), (3, 4)]).unwrap();
        let mut cur = EntriesCursor::new(&bytes).unwrap();
        assert_eq!(cur.next_key().unwrap(), Some(1));
        let _: u64 = cur.value().unwrap();
        assert!(cur.finish().is_err());
    }

    #[test]
    fn in_place_field_reads_match_owned_decode() {
        // Struct-shaped value: fields concatenate, so reading them one by
        // one through `de()` must land exactly at the next entry.
        let entries = vec![(10i64, (2u64, 3.5f64)), (11, (4, -1.0))];
        let bytes = to_bytes(&entries).unwrap();
        let mut cur = EntriesCursor::new(&bytes).unwrap();
        let mut got = Vec::new();
        while let Some(key) = cur.next_key().unwrap() {
            use serde::Deserialize;
            let a = u64::deserialize(&mut *cur.de()).unwrap();
            let b = f64::deserialize(&mut *cur.de()).unwrap();
            got.push((key, (a, b)));
        }
        cur.finish().unwrap();
        assert_eq!(got, entries);
    }
}
