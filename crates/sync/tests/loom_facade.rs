//! Self-tests of the model-checking shim: positive models that must pass,
//! and seeded concurrency bugs the checker must catch (lost updates, lost
//! wakeups / deadlock, overlapping tracked access).
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p smart-sync --test loom_facade`
#![cfg(loom)]

use smart_sync::atomic::{AtomicUsize, Ordering};
use smart_sync::{channel, model, thread, track, Arc, Condvar, Mutex};

fn fails(f: impl Fn() + Send + Sync + 'static) -> String {
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model::check(f)))
        .expect_err("model unexpectedly passed");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .unwrap_or_else(|| "<non-string panic payload>".to_owned())
}

#[test]
fn mutex_provides_mutual_exclusion() {
    model::check(|| {
        let counter = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    let mut g = c.lock();
                    let v = *g;
                    thread::yield_now();
                    *g = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2);
    });
}

#[test]
fn checker_catches_lost_update() {
    // Unsynchronized read-modify-write: some schedule interleaves the two
    // load/store pairs and loses an increment. The checker must find it.
    let msg = fails(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(msg.contains("lost update"), "unexpected failure message: {msg}");
}

#[test]
fn condvar_predicate_loop_has_no_lost_wakeup() {
    // If the register-release-park sequence in Condvar::wait were not atomic
    // with respect to the notifier, some schedule would park forever and the
    // deadlock detector would fail this model.
    model::check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (flag, cv) = &*p2;
            let mut g = flag.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (flag, cv) = &*pair;
            *flag.lock() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    });
}

#[test]
fn checker_detects_deadlock_on_missing_notify() {
    let msg = fails(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (flag, cv) = &*p2;
            let mut g = flag.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        // Sets the flag but never notifies: the waiter can only finish on
        // schedules where it checks the flag after the store — on the others
        // it parks forever.
        *pair.0.lock() = true;
        waiter.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure message: {msg}");
}

#[test]
fn checker_detects_abba_lock_cycle() {
    let msg = fails(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure message: {msg}");
}

#[test]
fn channel_is_fifo_and_signals_disconnect() {
    model::check(|| {
        let (tx, rx) = channel::unbounded::<u32>();
        let sender = thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            // tx dropped here: receiver must observe the disconnect.
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
        sender.join().unwrap();
    });
}

#[test]
fn scoped_threads_borrow_and_join() {
    model::check(|| {
        let mut results = [0usize; 2];
        let (left, right) = results.split_at_mut(1);
        thread::scope(|scope| {
            scope.spawn(|| left[0] = 1);
            scope.spawn(|| right[0] = 2);
        });
        assert_eq!(results, [1, 2]);
    });
}

#[test]
fn rwlock_allows_readers_excludes_writer() {
    model::check(|| {
        let lock = Arc::new(smart_sync::RwLock::new(7usize));
        let l2 = Arc::clone(&lock);
        let reader = thread::spawn(move || *l2.read());
        {
            let mut g = lock.write();
            *g += 1;
        }
        let seen = reader.join().unwrap();
        assert!(seen == 7 || seen == 8, "reader saw torn value {seen}");
        assert_eq!(*lock.read(), 8);
    });
}

#[test]
fn tracked_access_allows_disjoint_indices() {
    model::check(|| {
        let set = Arc::new(track::AccessSet::new(2));
        let s2 = Arc::clone(&set);
        let t = thread::spawn(move || {
            s2.acquire_mut(0);
            s2.release_mut(0);
        });
        set.acquire_mut(1);
        set.release_mut(1);
        t.join().unwrap();
    });
}

#[test]
fn tracked_access_detects_overlap() {
    let msg = fails(|| {
        let set = Arc::new(track::AccessSet::new(1));
        let s2 = Arc::clone(&set);
        let t = thread::spawn(move || {
            s2.acquire_mut(0);
            s2.release_mut(0);
        });
        set.acquire_mut(0);
        set.release_mut(0);
        t.join().unwrap();
    });
    assert!(msg.contains("overlapping concurrent mutable access"), "unexpected: {msg}");
}

#[test]
fn atomic_rmw_is_exact_under_all_schedules() {
    model::check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n2 = Arc::clone(&n);
                thread::spawn(move || n2.fetch_add(1, Ordering::SeqCst))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}
