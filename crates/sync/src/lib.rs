//! # smart-sync
//!
//! The workspace-wide synchronization facade. Every runtime crate imports its
//! locks, condvars, channels, atomics, and thread-spawning entry points from
//! here instead of reaching for `std::sync`, `parking_lot`, or `crossbeam`
//! directly (an invariant enforced by `cargo xtask lint`).
//!
//! ## Why a facade?
//!
//! Smart's correctness argument rests on a handful of concurrency protocols:
//! the pinned pool's task latch (§3.1 of the paper), the space-sharing
//! circular buffer (§3.2), and the credit-windowed stream used for global
//! combination in in-transit mode (§3.3). Routing every primitive through one
//! crate lets us swap the implementations for *model-checked* shims under
//! `RUSTFLAGS="--cfg loom"` and exhaustively explore thread interleavings of
//! those protocols, loom-style, without changing a line of the code under
//! test.
//!
//! ## Build flavours
//!
//! * **Normal builds** (`cfg(not(loom))`): thin re-exports of `parking_lot`
//!   locks, `crossbeam` channels, `std::sync::atomic`, and `std::thread`.
//!   Zero cost — the facade disappears at compile time.
//! * **Model builds** (`cfg(loom)`): the same API backed by the vendored
//!   model-checking shim in `src/shim/`: a token-passing scheduler that
//!   serializes threads, records every scheduling choice, and
//!   re-runs the test body under depth-first exploration of interleavings
//!   with CHESS-style preemption bounding. The real `loom` crate is outside
//!   this reproduction's allowed dependency set, so the shim implements the
//!   subset we need: `Mutex`/`Condvar`/`RwLock`, unbounded channels, spawn /
//!   scoped spawn / join, sequentially-consistent atomics, deadlock
//!   detection, and panic capture with a failing-schedule report.
//!
//! Model tests live in `tests/loom_*.rs` files gated on `#![cfg(loom)]` and
//! drive the shim through `model::check` / `model::Builder` (only present
//! under `cfg(loom)`).

// --- Normal builds: zero-cost re-exports -------------------------------------

#[cfg(not(loom))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomic integer/bool types and `Ordering`.
#[cfg(not(loom))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

/// Thread spawning, scoped threads, sleeping, and parallelism queries.
#[cfg(not(loom))]
pub mod thread {
    pub use std::thread::*;
}

/// Multi-producer multi-consumer channels (crossbeam surface).
#[cfg(not(loom))]
pub mod channel {
    pub use crossbeam::channel::*;
}

// --- Model builds: the vendored loom-style shim ------------------------------

#[cfg(loom)]
mod shim;

#[cfg(loom)]
pub use shim::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(loom)]
pub use shim::{atomic, channel, model, thread, track};

// Reference counting is identical in both flavours: `std::sync::Arc` is
// genuinely thread-safe and the shim's token-passing scheduler never depends
// on intercepting it.
pub use std::sync::{Arc, Weak};

#[cfg(all(test, not(loom)))]
mod facade_tests {
    use super::*;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Mutex::new(0usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
        let cv = Condvar::new();
        cv.notify_all(); // no waiters: must not panic
    }

    #[test]
    fn channel_is_crossbeam_surface() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn threads_and_atomics() {
        let n = Arc::new(atomic::AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        thread::spawn(move || n2.fetch_add(1, atomic::Ordering::SeqCst)).join().unwrap();
        assert_eq!(n.load(atomic::Ordering::SeqCst), 1);
    }
}
