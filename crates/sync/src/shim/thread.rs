//! Shim thread spawning: plain spawn, `Builder`, scoped threads, and join
//! handles, mirroring the `std::thread` subset the workspace uses.
//!
//! Results are passed through typed slots (`Arc<Mutex<Option<T>>>`) rather
//! than `Box<dyn Any>` so scoped threads can return non-`'static` values,
//! matching `std::thread::scope`.

use super::rt::{self, lockp};
use std::any::Any;
use std::io;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

pub use std::thread::available_parallelism;

/// A schedule point; the model equivalent of giving up the time slice.
pub fn yield_now() {
    rt::yield_point();
}

/// Time is not modeled: sleeping is just a schedule point.
pub fn sleep(_dur: Duration) {
    rt::yield_point();
}

// --- join bookkeeping --------------------------------------------------------

struct JoinSt {
    done: bool,
    panicked: bool,
    sentinel: bool,
    claimed: bool,
    waiters: Vec<usize>,
}

pub(crate) struct JoinCore {
    st: StdMutex<JoinSt>,
}

impl JoinCore {
    pub(crate) fn new() -> Self {
        JoinCore {
            st: StdMutex::new(JoinSt {
                done: false,
                panicked: false,
                sentinel: false,
                claimed: false,
                waiters: Vec::new(),
            }),
        }
    }

    /// Called by the exiting model thread, before `finish_self`.
    pub(crate) fn complete(&self, panicked: bool, sentinel: bool) {
        let waiters = {
            let mut s = lockp(&self.st);
            s.done = true;
            s.panicked = panicked;
            s.sentinel = sentinel;
            std::mem::take(&mut s.waiters)
        };
        rt::unblock(&waiters);
    }

    /// Park until the owning thread completed; returns (panicked, sentinel).
    fn wait_done(&self) -> (bool, bool) {
        rt::yield_point();
        loop {
            {
                let mut s = lockp(&self.st);
                if s.done {
                    return (s.panicked, s.sentinel);
                }
                let me = rt::require_tid();
                s.waiters.push(me);
            }
            rt::block_self();
        }
    }

    fn claim(&self) {
        lockp(&self.st).claimed = true;
    }
}

fn join_outcome<T>(core: &JoinCore, slot: &StdMutex<Option<T>>) -> std::thread::Result<T> {
    let (panicked, _sentinel) = core.wait_done();
    core.claim();
    if panicked {
        Err(Box::new("a model thread panicked; see the model failure report")
            as Box<dyn Any + Send>)
    } else {
        Ok(lockp(slot).take().expect("model thread result already taken"))
    }
}

/// Build the erased closure a model thread runs: execute `f`, store its
/// result in `slot`, hand any panic payload back to the runtime.
fn make_payload<'a, T, F>(
    f: F,
    slot: Arc<StdMutex<Option<T>>>,
) -> Box<dyn FnOnce() -> Option<Box<dyn Any + Send>> + Send + 'a>
where
    T: Send + 'a,
    F: FnOnce() -> T + Send + 'a,
{
    Box::new(move || match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => {
            *lockp(&slot) = Some(v);
            None
        }
        Err(p) => Some(p),
    })
}

// --- plain spawn -------------------------------------------------------------

pub struct JoinHandle<T> {
    core: Arc<JoinCore>,
    slot: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        join_outcome(&self.core, &self.slot)
    }

    pub fn is_finished(&self) -> bool {
        lockp(&self.core.st).done
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_named(f, None)
}

fn spawn_named<F, T>(f: F, name: Option<String>) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let core = Arc::new(JoinCore::new());
    let slot = Arc::new(StdMutex::new(None));
    let payload = make_payload(f, Arc::clone(&slot));
    rt::spawn_model_thread(payload, Arc::clone(&core), name);
    JoinHandle { core, slot }
}

// --- Builder -----------------------------------------------------------------

#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Stack size is not modeled; accepted for API compatibility.
    pub fn stack_size(self, _size: usize) -> Self {
        self
    }

    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Ok(spawn_named(f, self.name))
    }

    pub fn spawn_scoped<'scope, 'env, F, T>(
        self,
        scope: &'scope Scope<'scope, 'env>,
        f: F,
    ) -> io::Result<ScopedJoinHandle<'scope, T>>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        Ok(scope.spawn_inner(f, self.name))
    }
}

// --- scoped threads ----------------------------------------------------------

pub struct Scope<'scope, 'env: 'scope> {
    cores: StdMutex<Vec<Arc<JoinCore>>>,
    scope_marker: PhantomData<&'scope mut &'scope ()>,
    env_marker: PhantomData<&'env mut &'env ()>,
}

pub struct ScopedJoinHandle<'scope, T> {
    core: Arc<JoinCore>,
    slot: Arc<StdMutex<Option<T>>>,
    _marker: PhantomData<&'scope ()>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        join_outcome(&self.core, &self.slot)
    }

    pub fn is_finished(&self) -> bool {
        lockp(&self.core.st).done
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.spawn_inner(f, None)
    }

    fn spawn_inner<F, T>(&'scope self, f: F, name: Option<String>) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let core = Arc::new(JoinCore::new());
        let slot = Arc::new(StdMutex::new(None));
        let payload: Box<dyn FnOnce() -> Option<Box<dyn Any + Send>> + Send + 'scope> =
            make_payload(f, Arc::clone(&slot));
        // SAFETY: erasing 'scope to 'static is sound because `scope()` waits
        // for every thread spawned on this Scope to complete before it
        // returns, so the closure (and everything it borrows from 'scope and
        // 'env) strictly outlives the thread that runs it. This mirrors what
        // std::thread::scope guarantees.
        let payload: rt::ThreadPayload = unsafe { std::mem::transmute(payload) };
        rt::spawn_model_thread(payload, Arc::clone(&core), name);
        lockp(&self.cores).push(Arc::clone(&core));
        ScopedJoinHandle { core, slot, _marker: PhantomData }
    }
}

pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    let sc = Scope {
        cores: StdMutex::new(Vec::new()),
        scope_marker: PhantomData,
        env_marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&sc)));
    // Wait for every spawned thread, including ones already joined through
    // their handle (wait_done on a finished thread returns immediately).
    let cores: Vec<Arc<JoinCore>> = std::mem::take(&mut *lockp(&sc.cores));
    let mut unjoined_panic = false;
    for core in cores {
        let (panicked, sentinel) = core.wait_done();
        let claimed = lockp(&core.st).claimed;
        if panicked && !sentinel && !claimed {
            unjoined_panic = true;
        }
    }
    match result {
        Err(p) => resume_unwind(p),
        Ok(v) => {
            if unjoined_panic {
                panic!("a scoped model thread panicked");
            }
            v
        }
    }
}
