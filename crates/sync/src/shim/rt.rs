//! Model-execution runtime.
//!
//! One *execution* runs the model body once under a fixed schedule. Model
//! threads are real OS threads, but a token-passing protocol ensures exactly
//! one of them executes at a time; every potentially-visible action
//! (lock/unlock, channel op, atomic op, spawn, join) calls [`yield_point`] or
//! [`block_self`], which hands the token to the scheduler. The scheduler
//! either replays a recorded [`Choice`] (deterministic replay of a prefix) or
//! extends the schedule with a default choice that the exploration driver in
//! `model.rs` later perturbs.
//!
//! Invariants:
//! * A model thread only executes between being granted the token and its
//!   next `switch`; therefore any state it mutates between two yield points
//!   is observed atomically by the other threads.
//! * All blocking is cooperative: a thread marks itself `Blocked` and is made
//!   `Runnable` again by whoever completes the event it waits for. If no
//!   thread is runnable and some are blocked, the execution deadlocked and is
//!   aborted with a diagnostic.
//! * On a panic (model assertion failure) or deadlock, the execution aborts:
//!   every parked thread is woken and unwound with an [`AbortSentinel`]
//!   panic, and the driver reports the failing schedule.

use std::any::Any;
use std::cell::Cell;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use super::thread::JoinCore;

thread_local! {
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The execution currently being scheduled (at most one process-wide; the
/// driver serializes models through `model::MODEL_SERIAL`).
static ACTIVE: StdMutex<Option<Arc<Rt>>> = StdMutex::new(None);

/// Panic payload used to unwind model threads when an execution aborts.
/// Filtered out of the panic hook and never treated as a model failure.
pub(crate) struct AbortSentinel;

/// Lock a std mutex ignoring poisoning: the runtime's own invariants never
/// break mid-update (no panics while a state lock is held), so a poisoned
/// lock only means some *other* thread panicked, which the abort machinery
/// already handles.
pub(crate) fn lockp<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    Blocked,
    Finished,
}

/// One recorded scheduling decision: which thread got the token, which
/// threads were runnable at that point, and which thread held the token
/// before (to account preemptions).
#[derive(Clone)]
pub(crate) struct Choice {
    pub chosen: usize,
    pub runnable: Vec<usize>,
    pub prev: usize,
}

pub(crate) enum Abort {
    Panic(Box<dyn Any + Send>),
    Deadlock(String),
    Nondeterminism(String),
}

pub(crate) struct RtState {
    threads: Vec<Status>,
    current: usize,
    path: Vec<Choice>,
    pos: usize,
    abort: Option<Abort>,
    finished: usize,
}

pub(crate) struct Rt {
    m: StdMutex<RtState>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Rt {
    pub(crate) fn new(replay: Vec<Choice>) -> Self {
        Rt {
            m: StdMutex::new(RtState {
                threads: Vec::new(),
                current: 0,
                path: replay,
                pos: 0,
                abort: None,
                finished: 0,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    /// Pick the next thread to hold the token. Called with the state lock
    /// held, after the caller updated its own status.
    fn schedule_next(s: &mut RtState, cv: &StdCondvar) {
        let runnable: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, st)| **st == Status::Runnable)
            .map(|(t, _)| t)
            .collect();
        if runnable.is_empty() {
            if s.finished < s.threads.len() {
                s.abort = Some(Abort::Deadlock(format!(
                    "deadlock: {} thread(s) blocked with no runnable thread",
                    s.threads.len() - s.finished
                )));
            } else {
                s.current = usize::MAX; // execution complete
            }
            cv.notify_all();
            return;
        }
        let prev = s.current;
        let chosen = if s.pos < s.path.len() {
            let c = &s.path[s.pos];
            if c.runnable != runnable || c.prev != prev {
                s.abort = Some(Abort::Nondeterminism(format!(
                    "model diverged during schedule replay at step {}: \
                     recorded runnable set {:?} (after thread {}), observed {:?} (after thread {}); \
                     model bodies must be deterministic up to scheduling",
                    s.pos, c.runnable, c.prev, runnable, prev
                )));
                cv.notify_all();
                return;
            }
            c.chosen
        } else {
            // Default: keep the current thread running when possible, so the
            // baseline schedule has zero preemptions and the exploration
            // driver adds them incrementally.
            let d = if runnable.contains(&prev) { prev } else { runnable[0] };
            s.path.push(Choice { chosen: d, runnable: runnable.clone(), prev });
            d
        };
        s.pos += 1;
        s.current = chosen;
        cv.notify_all();
    }

    /// Hand the token to the scheduler with the given own-status and wait to
    /// be granted it again.
    fn switch(&self, me: usize, status: Status) {
        let mut s = lockp(&self.m);
        if s.abort.is_some() {
            drop(s);
            abort_unwind();
            return;
        }
        s.threads[me] = status;
        Self::schedule_next(&mut s, &self.cv);
        loop {
            if s.abort.is_some() {
                drop(s);
                abort_unwind();
                return;
            }
            if s.current == me && s.threads[me] == Status::Runnable {
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// First wait of a freshly spawned thread. Returns `false` if the
    /// execution aborted before the thread ever ran.
    fn wait_for_token_initial(&self, me: usize) -> bool {
        let mut s = lockp(&self.m);
        loop {
            if s.abort.is_some() {
                return false;
            }
            if s.current == me {
                return true;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn register_thread(&self) -> usize {
        let mut s = lockp(&self.m);
        s.threads.push(Status::Runnable);
        s.threads.len() - 1
    }

    fn unblock(&self, tids: &[usize]) {
        let mut s = lockp(&self.m);
        for &t in tids {
            if s.threads[t] == Status::Blocked {
                s.threads[t] = Status::Runnable;
            }
        }
    }

    fn record_panic(&self, p: Box<dyn Any + Send>) {
        let mut s = lockp(&self.m);
        if s.abort.is_none() {
            s.abort = Some(Abort::Panic(p));
        }
        self.cv.notify_all();
    }

    fn finish_self(&self, me: usize) {
        let mut s = lockp(&self.m);
        s.threads[me] = Status::Finished;
        s.finished += 1;
        if s.abort.is_none() {
            Self::schedule_next(&mut s, &self.cv);
        } else {
            self.cv.notify_all();
        }
    }

    /// Driver side: wait until every model thread of this execution finished
    /// (normally or by abort unwinding).
    pub(crate) fn wait_all_finished(&self) {
        let mut s = lockp(&self.m);
        while s.finished < s.threads.len() {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn join_os_threads(&self) {
        let hs = std::mem::take(&mut *lockp(&self.handles));
        for h in hs {
            let _ = h.join();
        }
    }

    pub(crate) fn take_outcome(&self) -> (Vec<Choice>, Option<Abort>) {
        let mut s = lockp(&self.m);
        (std::mem::take(&mut s.path), s.abort.take())
    }
}

/// Unwind the calling model thread because the execution aborted — unless it
/// is already unwinding (drop glue running during a panic), in which case we
/// must not panic again (that would abort the process) and simply return:
/// with the execution aborted the token protocol is already being torn down.
fn abort_unwind() {
    if !std::thread::panicking() {
        std::panic::panic_any(AbortSentinel);
    }
}

// --- free functions used by the shim primitives ------------------------------

pub(crate) fn set_active(rt: Option<Arc<Rt>>) {
    *lockp(&ACTIVE) = rt;
}

fn active() -> Option<Arc<Rt>> {
    lockp(&ACTIVE).clone()
}

fn model_ctx() -> Option<(Arc<Rt>, usize)> {
    let tid = TID.with(|t| t.get())?;
    let rt = active()?;
    Some((rt, tid))
}

/// A schedule point. Lenient: off the model scheduler (no active execution,
/// or called from a non-model thread such as the test harness) it is a no-op,
/// so constructors and `Drop` impls work outside `model::check`.
pub(crate) fn yield_point() {
    if let Some((rt, me)) = model_ctx() {
        rt.switch(me, Status::Runnable);
    }
}

/// Park the calling thread until another thread passes its tid to
/// [`unblock`]. Strict: only valid on a model thread inside `model::check`.
pub(crate) fn block_self() {
    let (rt, me) = model_ctx().expect(
        "smart-sync loom shim: blocking operation used outside model::check \
         (run loom tests through smart_sync::model)",
    );
    rt.switch(me, Status::Blocked);
}

/// Tid of the calling model thread, for registering in wait queues.
pub(crate) fn require_tid() -> usize {
    TID.with(|t| t.get()).expect(
        "smart-sync loom shim: blocking operation used outside model::check \
         (run loom tests through smart_sync::model)",
    )
}

/// Make the given parked threads runnable again. Lenient: a no-op when no
/// execution is active (e.g. channel halves dropped after a model finished).
pub(crate) fn unblock(tids: &[usize]) {
    if tids.is_empty() {
        return;
    }
    if let Some(rt) = active() {
        rt.unblock(tids);
    }
}

/// The closure a model thread runs: returns the panic payload if the body
/// panicked (already caught), `None` on clean completion.
pub(crate) type ThreadPayload = Box<dyn FnOnce() -> Option<Box<dyn Any + Send>> + Send + 'static>;

/// Spawn a model thread executing `payload`, completing `core` when done.
/// Used for the root thread (by the driver) and every `thread::spawn` /
/// scoped spawn inside the model.
pub(crate) fn spawn_model_thread(
    payload: ThreadPayload,
    core: Arc<JoinCore>,
    name: Option<String>,
) {
    let rt = active().expect(
        "smart-sync loom shim: thread spawn outside model::check \
         (run loom tests through smart_sync::model)",
    );
    let tid = rt.register_thread();
    let rt2 = Arc::clone(&rt);
    let h = std::thread::Builder::new()
        .name(name.unwrap_or_else(|| format!("loom-model-{tid}")))
        .spawn(move || model_thread_main(rt2, tid, core, payload))
        .expect("failed to spawn model OS thread");
    rt.store_handle(h);
    // Spawning is itself a schedule point: the child may run before the
    // spawner's next action. No-op when the driver spawns the root.
    yield_point();
}

impl Rt {
    fn store_handle(&self, h: std::thread::JoinHandle<()>) {
        lockp(&self.handles).push(h);
    }
}

fn model_thread_main(rt: Arc<Rt>, tid: usize, core: Arc<JoinCore>, payload: ThreadPayload) {
    TID.with(|t| t.set(Some(tid)));
    let panic = if rt.wait_for_token_initial(tid) { payload() } else { None };
    match panic {
        None => core.complete(false, false),
        Some(p) => {
            let sentinel = p.is::<AbortSentinel>();
            core.complete(true, sentinel);
            if !sentinel {
                rt.record_panic(p);
            }
        }
    }
    rt.finish_self(tid);
}
