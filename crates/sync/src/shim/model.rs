//! Exploration driver: re-runs a model body under every schedule reachable
//! within a preemption bound.
//!
//! Each execution records its schedule as a sequence of [`Choice`]s (see
//! `rt.rs`). After a clean execution, [`advance`] mutates the deepest choice
//! that still has an untried alternative — depth-first search over the
//! schedule tree. A choice that switches away from a still-runnable thread
//! costs one *preemption*; alternatives beyond the configured bound are
//! pruned (CHESS-style iterative context bounding: almost all concurrency
//! bugs manifest within two preemptions, and the bound turns a factorial
//! search into a polynomial one). `preemption_bound(None)` disables pruning
//! for genuinely exhaustive search of tiny models.
//!
//! The first failing execution (panic, deadlock, or replay divergence) stops
//! the search: the driver prints the thread-id sequence of the failing
//! schedule and re-raises the original panic payload.

use super::rt::{self, Abort, Choice, Rt};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex as StdMutex};

/// Serializes model runs process-wide: the shim has a single `ACTIVE`
/// execution slot, and the panic-hook filter is global.
static MODEL_SERIAL: StdMutex<()> = StdMutex::new(());

pub struct Builder {
    preemption_bound: Option<usize>,
    max_schedules: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    pub fn new() -> Self {
        Builder { preemption_bound: Some(2), max_schedules: 500_000 }
    }

    /// Maximum number of preemptive context switches per schedule; `None`
    /// explores every interleaving (use only for very small models).
    pub fn preemption_bound(mut self, bound: Option<usize>) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Safety valve: fail loudly if the schedule space is larger than this
    /// rather than letting CI spin forever.
    pub fn max_schedules(mut self, max: usize) -> Self {
        self.max_schedules = max;
        self
    }

    pub fn check<F>(self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        run(self, Arc::new(f));
    }
}

/// Check `f` under the default preemption bound of 2.
pub fn check<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

fn run(opts: Builder, f: Arc<dyn Fn() + Send + Sync>) {
    let _serial = rt::lockp(&MODEL_SERIAL);
    install_sentinel_hook_once();
    let mut path: Vec<Choice> = Vec::new();
    let mut schedules: usize = 0;
    loop {
        schedules += 1;
        assert!(
            schedules <= opts.max_schedules,
            "model: exceeded {} schedules without exhausting the space; \
             raise Builder::max_schedules or shrink the model",
            opts.max_schedules
        );
        let rt = Arc::new(Rt::new(path));
        rt::set_active(Some(Arc::clone(&rt)));
        let f2 = Arc::clone(&f);
        let root_core = Arc::new(super::thread::JoinCore::new());
        rt::spawn_model_thread(
            Box::new(move || std::panic::catch_unwind(AssertUnwindSafe(|| f2())).err()),
            root_core,
            Some("loom-model-root".to_owned()),
        );
        rt.wait_all_finished();
        rt::set_active(None);
        rt.join_os_threads();
        let (recorded, abort) = rt.take_outcome();
        if let Some(abort) = abort {
            report_failure(abort, schedules, &recorded);
        }
        path = recorded;
        if !advance(&mut path, opts.preemption_bound) {
            break;
        }
    }
}

fn report_failure(abort: Abort, schedules: usize, path: &[Choice]) -> ! {
    let trace: Vec<usize> = path.iter().map(|c| c.chosen).collect();
    eprintln!("model: failure on schedule #{schedules}; thread token sequence: {trace:?}");
    match abort {
        Abort::Panic(p) => std::panic::resume_unwind(p),
        Abort::Deadlock(msg) | Abort::Nondeterminism(msg) => panic!("model: {msg}"),
    }
}

/// Did this choice preempt a still-runnable thread?
fn is_preemption(c: &Choice) -> bool {
    c.chosen != c.prev && c.runnable.contains(&c.prev)
}

/// Alternatives in exploration order: the non-preempting continuation (the
/// previously running thread) first, then the others by ascending tid.
fn canonical_order(c: &Choice) -> Vec<usize> {
    let mut order = Vec::with_capacity(c.runnable.len());
    if c.runnable.contains(&c.prev) {
        order.push(c.prev);
    }
    order.extend(c.runnable.iter().copied().filter(|t| *t != c.prev));
    order
}

/// Advance `path` to the next schedule in DFS order; `false` when the
/// (bounded) space is exhausted.
fn advance(path: &mut Vec<Choice>, bound: Option<usize>) -> bool {
    loop {
        let Some(last) = path.last() else { return false };
        // Preemptions spent strictly before the choice being perturbed.
        let spent: usize = path[..path.len() - 1].iter().filter(|c| is_preemption(c)).count();
        let budget_left = bound.map(|b| b.saturating_sub(spent));
        if let Some(next) = next_alternative(last, budget_left) {
            path.last_mut().expect("non-empty path").chosen = next;
            return true;
        }
        path.pop();
    }
}

fn next_alternative(c: &Choice, budget_left: Option<usize>) -> Option<usize> {
    let order = canonical_order(c);
    let idx = order
        .iter()
        .position(|t| *t == c.chosen)
        .expect("recorded choice not among its own alternatives");
    for &cand in &order[idx + 1..] {
        let preempts = cand != c.prev && c.runnable.contains(&c.prev);
        if preempts {
            if let Some(b) = budget_left {
                if b == 0 {
                    continue;
                }
            }
        }
        return Some(cand);
    }
    None
}

fn install_sentinel_hook_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Abort-sentinel unwinds are bookkeeping, not failures; keep them
            // out of the test output.
            if info.payload().is::<rt::AbortSentinel>() {
                return;
            }
            prev(info);
        }));
    });
}
