//! Vendored loom-style model-checking shim (compiled only under `cfg(loom)`).
//!
//! Layout:
//! * [`rt`] — the execution runtime: token-passing serialized scheduler,
//!   deterministic replay, deadlock detection, panic capture.
//! * [`model`] — the exploration driver: re-runs the model body over a
//!   depth-first search of scheduling choices with CHESS-style preemption
//!   bounding, reporting the first failing schedule.
//! * [`sync`] / [`channel`] / [`thread`] / [`atomic`] — shim primitives that
//!   mirror the facade's normal-build API.
//! * [`track`] — an access-set used by `SharedSlice` to detect overlapping
//!   index writes that `&[UnsafeCell<T>]` cannot express to the scheduler.

pub(crate) mod rt;

pub mod atomic;
pub mod channel;
pub mod model;
pub mod sync;
pub mod thread;
pub mod track;
