//! Exclusive-access tracking for raw-cell data structures.
//!
//! `SharedSlice` hands out interior-mutable access to disjoint indices of a
//! `&[UnsafeCell<T>]`; its safety argument ("callers never target the same
//! index concurrently") is invisible to the scheduler, so under `cfg(loom)`
//! the slice carries an [`AccessSet`] and brackets every write with
//! [`AccessSet::acquire_mut`] / [`AccessSet::release_mut`]. If two model
//! threads ever hold the same index at once — i.e. the schedule interleaves
//! two writes to one element — the model fails with a diagnostic instead of
//! silently exercising undefined behaviour.

use super::rt;
use std::sync::atomic::{AtomicU8, Ordering};

pub struct AccessSet {
    cells: Box<[AtomicU8]>,
}

impl AccessSet {
    pub fn new(len: usize) -> Self {
        AccessSet { cells: (0..len).map(|_| AtomicU8::new(0)).collect() }
    }

    /// Mark `index` as being mutated by the calling thread. Panics (failing
    /// the model) if another thread currently holds it. Schedule points
    /// before and after the mark give the scheduler a chance to interleave a
    /// competing access inside the window.
    pub fn acquire_mut(&self, index: usize) {
        rt::yield_point();
        if self.cells[index].swap(1, Ordering::SeqCst) != 0 {
            panic!("overlapping concurrent mutable access to tracked index {index}");
        }
        rt::yield_point();
    }

    /// Release `index` after the mutation completes.
    pub fn release_mut(&self, index: usize) {
        self.cells[index].store(0, Ordering::SeqCst);
    }
}
