//! Shim `Mutex` / `Condvar` / `RwLock` with the parking_lot API surface the
//! workspace uses: `lock()` returns a guard directly (no poisoning) and
//! `Condvar::wait` takes `&mut MutexGuard`.
//!
//! All internal wait-queue state lives behind short `std::sync::Mutex`
//! critical sections; the check-register-block sequences are atomic with
//! respect to other *model* threads because the caller holds the scheduler
//! token from the preceding yield point until it parks in `rt::block_self`.

use super::rt;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex as StdMutex;

// --- Mutex -------------------------------------------------------------------

struct MxState {
    held: bool,
    waiters: Vec<usize>,
}

pub struct Mutex<T: ?Sized> {
    st: StdMutex<MxState>,
    data: UnsafeCell<T>,
}

// SAFETY: like std::sync::Mutex — the owned value moves between threads only
// via the lock protocol, so `T: Send` suffices.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: `lock()` hands out a reference to `data` to at most one thread at a
// time (the `held` flag below), so sharing the mutex requires only `T: Send`.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            st: StdMutex::new(MxState { held: false, waiters: Vec::new() }),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        rt::yield_point();
        self.raw_lock();
        MutexGuard { lock: self }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        rt::yield_point();
        let mut s = rt::lockp(&self.st);
        if s.held {
            None
        } else {
            s.held = true;
            drop(s);
            Some(MutexGuard { lock: self })
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Acquire without a leading schedule point (used on the condvar
    /// reacquire path, where the caller was just scheduled).
    pub(crate) fn raw_lock(&self) {
        loop {
            let mut s = rt::lockp(&self.st);
            if !s.held {
                s.held = true;
                return;
            }
            let me = rt::require_tid();
            s.waiters.push(me);
            drop(s);
            rt::block_self();
        }
    }

    pub(crate) fn raw_unlock(&self) {
        let waiters = {
            let mut s = rt::lockp(&self.st);
            s.held = false;
            std::mem::take(&mut s.waiters)
        };
        // Wake every waiter; they re-contend, which is exactly the barging
        // behaviour parking_lot permits and the schedules we want to explore.
        rt::unblock(&waiters);
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // No yield point: Debug must stay schedule-neutral. Peek at the raw
        // held flag instead of going through `try_lock`.
        let held = rt::lockp(&self.st).held;
        if held {
            f.debug_struct("Mutex").field("data", &"<locked>").finish()
        } else {
            // SAFETY: `held == false` means no guard exists; with the state
            // lock just sampled this is best-effort (as in parking_lot), and
            // model threads cannot run concurrently with us anyway.
            f.debug_struct("Mutex").field("data", unsafe { &&*self.data.get() }).finish()
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard witnesses that this thread holds the lock, so no
        // other reference to `data` exists.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as for `deref` — exclusive access is guaranteed by holding
        // the lock.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw_unlock();
        // Releasing a lock is a visible action other threads may react to.
        rt::yield_point();
    }
}

// --- Condvar -----------------------------------------------------------------

#[derive(Default)]
pub struct Condvar {
    waiters: StdMutex<Vec<usize>>,
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { waiters: StdMutex::new(Vec::new()) }
    }

    /// Atomically (with respect to model threads — the caller holds the
    /// scheduler token throughout) registers as a waiter, releases the lock,
    /// parks, and reacquires the lock once notified.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        let me = rt::require_tid();
        rt::lockp(&self.waiters).push(me);
        guard.lock.raw_unlock();
        rt::block_self();
        guard.lock.raw_lock();
    }

    pub fn notify_one(&self) {
        let w = {
            let mut s = rt::lockp(&self.waiters);
            if s.is_empty() {
                None
            } else {
                Some(s.remove(0))
            }
        };
        if let Some(t) = w {
            rt::unblock(&[t]);
        }
        rt::yield_point();
    }

    pub fn notify_all(&self) {
        let ws = std::mem::take(&mut *rt::lockp(&self.waiters));
        rt::unblock(&ws);
        rt::yield_point();
    }
}

// --- RwLock ------------------------------------------------------------------

struct RwState {
    writer: bool,
    readers: usize,
    waiters: Vec<usize>,
}

pub struct RwLock<T: ?Sized> {
    st: StdMutex<RwState>,
    data: UnsafeCell<T>,
}

// SAFETY: the owned value is only handed across threads via the lock
// protocol, so `T: Send` suffices (as for std's RwLock).
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: readers share `&T` concurrently (requires `T: Sync`) and writers
// get exclusive `&mut T` (requires `T: Send`) — std's bounds.
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            st: StdMutex::new(RwState { writer: false, readers: 0, waiters: Vec::new() }),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        rt::yield_point();
        loop {
            {
                let mut s = rt::lockp(&self.st);
                if !s.writer {
                    s.readers += 1;
                    return RwLockReadGuard { lock: self };
                }
                let me = rt::require_tid();
                s.waiters.push(me);
            }
            rt::block_self();
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        rt::yield_point();
        loop {
            {
                let mut s = rt::lockp(&self.st);
                if !s.writer && s.readers == 0 {
                    s.writer = true;
                    return RwLockWriteGuard { lock: self };
                }
                let me = rt::require_tid();
                s.waiters.push(me);
            }
            rt::block_self();
        }
    }

    fn release_read(&self) {
        let waiters = {
            let mut s = rt::lockp(&self.st);
            s.readers -= 1;
            if s.readers == 0 {
                std::mem::take(&mut s.waiters)
            } else {
                Vec::new()
            }
        };
        rt::unblock(&waiters);
    }

    fn release_write(&self) {
        let waiters = {
            let mut s = rt::lockp(&self.st);
            s.writer = false;
            std::mem::take(&mut s.waiters)
        };
        rt::unblock(&waiters);
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let writer = rt::lockp(&self.st).writer;
        if writer {
            f.debug_struct("RwLock").field("data", &"<locked>").finish()
        } else {
            // SAFETY: no writer holds the lock; concurrent readers only take
            // `&T`, so forming another `&T` here is sound.
            f.debug_struct("RwLock").field("data", unsafe { &&*self.data.get() }).finish()
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: read guards coexist only with other readers; no writer can
        // hold the lock while `readers > 0`.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release_read();
        rt::yield_point();
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the write guard holds exclusive access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the write guard holds exclusive access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release_write();
        rt::yield_point();
    }
}
