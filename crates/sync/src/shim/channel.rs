//! Shim unbounded MPMC channel with the crossbeam surface the workspace uses:
//! `unbounded`, cloneable `Sender`/`Receiver`, `send`, `recv`, `try_recv`,
//! `recv_timeout`, and the corresponding error enums.
//!
//! `recv_timeout` models "the timeout may always elapse": when the queue is
//! empty it returns [`RecvTimeoutError::Timeout`] immediately instead of
//! waiting, which is the schedule in which the deadline fires before a
//! message arrives. Code that loops on `recv_timeout` must therefore be
//! correct when every wait times out — exactly the property worth checking.

use super::rt;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct ChState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    rx_waiters: Vec<usize>,
}

struct Chan<T> {
    st: StdMutex<ChState<T>>,
}

pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        st: StdMutex::new(ChState {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            rx_waiters: Vec::new(),
        }),
    });
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        rt::yield_point();
        let waiters = {
            let mut s = rt::lockp(&self.chan.st);
            if s.receivers == 0 {
                return Err(SendError(value));
            }
            s.queue.push_back(value);
            std::mem::take(&mut s.rx_waiters)
        };
        rt::unblock(&waiters);
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        rt::lockp(&self.chan.st).senders += 1;
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waiters = {
            let mut s = rt::lockp(&self.chan.st);
            s.senders -= 1;
            if s.senders == 0 {
                // Receivers parked on an empty queue must wake to observe the
                // disconnect.
                std::mem::take(&mut s.rx_waiters)
            } else {
                Vec::new()
            }
        };
        rt::unblock(&waiters);
    }
}

pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        rt::yield_point();
        loop {
            {
                let mut s = rt::lockp(&self.chan.st);
                if let Some(v) = s.queue.pop_front() {
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvError);
                }
                let me = rt::require_tid();
                s.rx_waiters.push(me);
            }
            rt::block_self();
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        rt::yield_point();
        let mut s = rt::lockp(&self.chan.st);
        if let Some(v) = s.queue.pop_front() {
            Ok(v)
        } else if s.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv_timeout(&self, _timeout: Duration) -> Result<T, RecvTimeoutError> {
        rt::yield_point();
        let mut s = rt::lockp(&self.chan.st);
        if let Some(v) = s.queue.pop_front() {
            Ok(v)
        } else if s.senders == 0 {
            Err(RecvTimeoutError::Disconnected)
        } else {
            Err(RecvTimeoutError::Timeout)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        rt::lockp(&self.chan.st).receivers += 1;
        Receiver { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        rt::lockp(&self.chan.st).receivers -= 1;
    }
}

// crossbeam's endpoints are Debug (types holding them can derive it); match
// its terse "Sender { .. }" rendering rather than peeking at channel state.
impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}
