//! Shim atomics: every operation is a schedule point and executes with
//! `SeqCst` regardless of the ordering the caller asked for. The model
//! explores interleavings of sequentially-consistent executions only —
//! weak-memory reorderings are out of scope for this shim (they would need
//! the real loom's store buffers), which we accept because the workspace uses
//! atomics for counters and flags, not for ordering-sensitive lock-free
//! protocols.

use super::rt;
use std::sync::atomic as std_atomic;

pub use std::sync::atomic::Ordering;

macro_rules! shim_atomic_int {
    ($name:ident, $int:ty) => {
        #[derive(Debug, Default)]
        pub struct $name {
            v: std_atomic::$name,
        }

        impl $name {
            pub const fn new(value: $int) -> Self {
                Self { v: std_atomic::$name::new(value) }
            }

            pub fn load(&self, _order: Ordering) -> $int {
                rt::yield_point();
                self.v.load(Ordering::SeqCst)
            }

            pub fn store(&self, value: $int, _order: Ordering) {
                rt::yield_point();
                self.v.store(value, Ordering::SeqCst)
            }

            pub fn swap(&self, value: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.v.swap(value, Ordering::SeqCst)
            }

            pub fn fetch_add(&self, value: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.v.fetch_add(value, Ordering::SeqCst)
            }

            pub fn fetch_sub(&self, value: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.v.fetch_sub(value, Ordering::SeqCst)
            }

            pub fn fetch_and(&self, value: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.v.fetch_and(value, Ordering::SeqCst)
            }

            pub fn fetch_or(&self, value: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.v.fetch_or(value, Ordering::SeqCst)
            }

            pub fn fetch_max(&self, value: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.v.fetch_max(value, Ordering::SeqCst)
            }

            pub fn fetch_min(&self, value: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.v.fetch_min(value, Ordering::SeqCst)
            }

            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$int, $int> {
                rt::yield_point();
                self.v.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                // No spurious failures in the model: delegate to the strong
                // form (a legal implementation of the weak one).
                self.compare_exchange(current, new, success, failure)
            }

            pub fn into_inner(self) -> $int {
                self.v.into_inner()
            }
        }
    };
}

shim_atomic_int!(AtomicUsize, usize);
shim_atomic_int!(AtomicIsize, isize);
shim_atomic_int!(AtomicU8, u8);
shim_atomic_int!(AtomicU32, u32);
shim_atomic_int!(AtomicU64, u64);
shim_atomic_int!(AtomicI64, i64);

#[derive(Debug, Default)]
pub struct AtomicBool {
    v: std_atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(value: bool) -> Self {
        Self { v: std_atomic::AtomicBool::new(value) }
    }

    pub fn load(&self, _order: Ordering) -> bool {
        rt::yield_point();
        self.v.load(Ordering::SeqCst)
    }

    pub fn store(&self, value: bool, _order: Ordering) {
        rt::yield_point();
        self.v.store(value, Ordering::SeqCst)
    }

    pub fn swap(&self, value: bool, _order: Ordering) -> bool {
        rt::yield_point();
        self.v.swap(value, Ordering::SeqCst)
    }

    pub fn fetch_and(&self, value: bool, _order: Ordering) -> bool {
        rt::yield_point();
        self.v.fetch_and(value, Ordering::SeqCst)
    }

    pub fn fetch_or(&self, value: bool, _order: Ordering) -> bool {
        rt::yield_point();
        self.v.fetch_or(value, Ordering::SeqCst)
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        rt::yield_point();
        self.v.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    pub fn into_inner(self) -> bool {
        self.v.into_inner()
    }
}
