//! The MiniSpark driver context: a worker pool plus the busy "service"
//! threads a Spark driver runs alongside its executors.

use smart_pool::{shared_pool, SharedPool};
use smart_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use smart_sync::thread::JoinHandle;
use smart_sync::{Arc, Mutex};
use std::time::Duration;

/// Per-stage timing record: how long each partition's task ran.
///
/// Like Smart's `RunStats`, these busy times let the harness compose a
/// modeled parallel stage time (`max` over a round-robin assignment of
/// partitions to executors) on hosts with fewer cores than the experiment
/// calls for.
#[derive(Debug, Clone, Default)]
pub struct StageStats {
    /// Busy time of each partition's task, in partition order.
    pub partition_busy: Vec<Duration>,
}

impl StageStats {
    /// Modeled stage wall time with `workers` executors: partitions are
    /// assigned round-robin; the stage ends when the busiest executor does.
    pub fn modeled_wall(&self, workers: usize) -> Duration {
        assert!(workers > 0);
        let mut per_worker = vec![Duration::ZERO; workers];
        for (p, &busy) in self.partition_busy.iter().enumerate() {
            per_worker[p % workers] += busy;
        }
        per_worker.into_iter().max().unwrap_or_default()
    }
}

/// Driver context owning the executor pool and service threads.
pub struct SparkContext {
    pool: SharedPool,
    workers: usize,
    service_stop: Arc<AtomicBool>,
    service_work: Arc<AtomicU64>,
    service_handles: Vec<JoinHandle<()>>,
    service_count: usize,
    stage_stats: Mutex<Option<Vec<StageStats>>>,
}

impl SparkContext {
    /// A context with `workers` executor threads and the default two
    /// service threads (scheduler heartbeat + driver UI).
    pub fn new(workers: usize) -> Self {
        Self::with_service_threads(workers, 2)
    }

    /// A context with an explicit number of service threads (0 disables the
    /// effect; used by tests and the ablation bench).
    pub fn with_service_threads(workers: usize, service: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let pool = shared_pool(workers).expect("worker pool");
        let service_stop = Arc::new(AtomicBool::new(false));
        let service_work = Arc::new(AtomicU64::new(0));
        let service_handles = (0..service)
            .map(|i| {
                let stop = Arc::clone(&service_stop);
                let work = Arc::clone(&service_work);
                smart_sync::thread::Builder::new()
                    .name(format!("minispark-service-{i}"))
                    .spawn(move || {
                        // Periodic bookkeeping: mostly sleeping, with short
                        // bursts of work — enough to contend for a core when
                        // executors fully subscribe the machine.
                        let mut acc = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            for k in 0..20_000u64 {
                                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                            }
                            work.fetch_add(1, Ordering::Relaxed);
                            smart_sync::thread::sleep(std::time::Duration::from_micros(500));
                        }
                        std::hint::black_box(acc);
                    })
                    .expect("service thread")
            })
            .collect();
        SparkContext {
            pool,
            workers,
            service_stop,
            service_work,
            service_handles,
            service_count: service,
            stage_stats: Mutex::new(None),
        }
    }

    /// Start recording per-stage partition timings.
    pub fn enable_stage_stats(&self) {
        *self.stage_stats.lock() = Some(Vec::new());
    }

    /// Take the recorded stage timings (and keep recording).
    pub fn take_stage_stats(&self) -> Vec<StageStats> {
        let mut guard = self.stage_stats.lock();
        match guard.as_mut() {
            Some(v) => std::mem::take(v),
            None => Vec::new(),
        }
    }

    pub(crate) fn record_stage(&self, stats: StageStats) {
        if let Some(v) = self.stage_stats.lock().as_mut() {
            v.push(stats);
        }
    }

    /// Executor thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Configured service threads.
    pub fn service_threads(&self) -> usize {
        self.service_count
    }

    /// Heartbeats performed by the service threads (diagnostic).
    pub fn service_beats(&self) -> u64 {
        self.service_work.load(Ordering::Relaxed)
    }

    pub(crate) fn pool(&self) -> &SharedPool {
        &self.pool
    }

    /// Distribute `data` across `partitions` partitions as an RDD.
    pub fn parallelize<T>(&self, data: Vec<T>, partitions: usize) -> crate::Rdd<'_, T>
    where
        T: Clone + Send + Sync + serde::Serialize + serde::de::DeserializeOwned,
    {
        crate::Rdd::from_vec(self, data, partitions)
    }
}

impl Drop for SparkContext {
    fn drop(&mut self) {
        self.service_stop.store(true, Ordering::Relaxed);
        for h in self.service_handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_starts_and_stops_service_threads() {
        let ctx = SparkContext::new(2);
        assert_eq!(ctx.workers(), 2);
        assert_eq!(ctx.service_threads(), 2);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(ctx.service_beats() > 0, "service threads should heartbeat");
        drop(ctx); // must join without hanging
    }

    #[test]
    fn zero_service_threads_supported() {
        let ctx = SparkContext::with_service_threads(1, 0);
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(ctx.service_beats(), 0);
    }

    #[test]
    #[should_panic(expected = "worker")]
    fn zero_workers_rejected() {
        let _ = SparkContext::new(0);
    }
}
