//! The three Fig. 5 workloads implemented on the RDD API, following the
//! structure of Spark's own example programs (as the paper did).

use crate::{Rdd, SparkContext};

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Equi-width histogram: `map → (bucket, 1) → reduce_by_key(+)`.
///
/// `data` is flat doubles; returns per-bucket counts. Elements are boxed —
/// a Spark 1.1 `RDD[Double]` stores each element as a `java.lang.Double`
/// object, and that per-element allocation/indirection is part of the
/// architecture the paper measured.
pub fn histogram_spark(
    ctx: &SparkContext,
    data: &[f64],
    min: f64,
    max: f64,
    buckets: usize,
    partitions: usize,
) -> Vec<u64> {
    assert!(buckets > 0 && max > min);
    let width = (max - min) / buckets as f64;
    let boxed: Vec<Box<f64>> = data.iter().map(|&v| Box::new(v)).collect();
    let rdd = ctx.parallelize(boxed, partitions);
    let counts = rdd
        .map_to_pairs(|v| {
            let v = **v;
            let b = if !v.is_finite() || v < min {
                0
            } else {
                (((v - min) / width) as usize).min(buckets - 1)
            };
            (b as u64, 1u64)
        })
        .reduce_by_key(|a, b| a + b)
        .collect_map();
    (0..buckets as u64).map(|b| counts.get(&b).copied().unwrap_or(0)).collect()
}

/// Batch-gradient logistic regression, Spark-example style: each iteration
/// maps every record to a gradient vector and tree-aggregates by key 0.
///
/// `records` are `dims + 1` doubles each (features, label). Returns the
/// learned weights after `iters` iterations.
pub fn logistic_spark(
    ctx: &SparkContext,
    records: &[f64],
    dims: usize,
    learning_rate: f64,
    iters: usize,
    partitions: usize,
) -> Vec<f64> {
    assert!(dims > 0 && records.len().is_multiple_of(dims + 1));
    // One immutable RDD of owned record vectors — per-record allocations,
    // exactly like the Spark example's RDD[LabeledPoint].
    let recs: Vec<Vec<f64>> = records.chunks_exact(dims + 1).map(|r| r.to_vec()).collect();
    let rdd: Rdd<'_, Vec<f64>> = ctx.parallelize(recs, partitions);

    let mut weights = vec![0.0f64; dims];
    for _ in 0..iters {
        let w = weights.clone(); // driver broadcast
        let (grad, count) = rdd
            .map_to_pairs(move |rec| {
                let (x, y) = (&rec[..dims], rec[dims]);
                let dot: f64 = x.iter().zip(&w).map(|(xi, wi)| xi * wi).sum();
                let err = sigmoid(dot) - y;
                let g: Vec<f64> = x.iter().map(|xi| err * xi).collect();
                (0u8, (g, 1u64))
            })
            .reduce_by_key(|a, b| {
                let sum: Vec<f64> = a.0.iter().zip(&b.0).map(|(x, y)| x + y).collect();
                (sum, a.1 + b.1)
            })
            .collect_map()
            .remove(&0)
            .unwrap_or((vec![0.0; dims], 0));
        if count > 0 {
            for (wi, g) in weights.iter_mut().zip(&grad) {
                *wi -= learning_rate / count as f64 * g;
            }
        }
    }
    weights
}

/// Lloyd's k-means, Spark-example style: per iteration, map each point to
/// `(nearest, (point, 1))`, reduce by key, recompute centroids at the
/// driver.
///
/// `points` are flat `dims`-dimensional; `init` is `k × dims` flattened.
pub fn kmeans_spark(
    ctx: &SparkContext,
    points: &[f64],
    dims: usize,
    init: &[f64],
    iters: usize,
    partitions: usize,
) -> Vec<Vec<f64>> {
    assert!(dims > 0 && points.len().is_multiple_of(dims));
    assert!(init.len().is_multiple_of(dims) && !init.is_empty());
    let pts: Vec<Vec<f64>> = points.chunks_exact(dims).map(|p| p.to_vec()).collect();
    let rdd: Rdd<'_, Vec<f64>> = ctx.parallelize(pts, partitions);

    let mut centroids: Vec<Vec<f64>> = init.chunks_exact(dims).map(|c| c.to_vec()).collect();
    for _ in 0..iters {
        let cents = centroids.clone(); // driver broadcast
        let sums = rdd
            .map_to_pairs(move |p| {
                let mut best = 0u64;
                let mut best_d = f64::INFINITY;
                for (j, c) in cents.iter().enumerate() {
                    let d: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                    if d < best_d {
                        best_d = d;
                        best = j as u64;
                    }
                }
                (best, (p.clone(), 1u64))
            })
            .reduce_by_key(|a, b| {
                let sum: Vec<f64> = a.0.iter().zip(&b.0).map(|(x, y)| x + y).collect();
                (sum, a.1 + b.1)
            })
            .collect_map();
        for (j, c) in centroids.iter_mut().enumerate() {
            if let Some((sum, n)) = sums.get(&(j as u64)) {
                if *n > 0 {
                    for (ci, s) in c.iter_mut().zip(sum) {
                        *ci = s / *n as f64;
                    }
                }
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SparkContext {
        SparkContext::with_service_threads(2, 0)
    }

    #[test]
    fn histogram_counts_every_element() {
        let c = ctx();
        let data: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 100.0).collect();
        let h = histogram_spark(&c, &data, 0.0, 1.0, 10, 4);
        assert_eq!(h.iter().sum::<u64>(), 1000);
        // Near-uniform: float bucket boundaries may shift a value or two.
        assert!(h.iter().all(|&b| (85..=115).contains(&b)), "{h:?}");
    }

    #[test]
    fn logistic_learns_signs() {
        // Planted linearly separable data: y = [x0 > 0].
        let c = ctx();
        let mut records = Vec::new();
        for i in 0..400 {
            let x0 = if i % 2 == 0 { 1.0 } else { -1.0 };
            let x1 = ((i * 7) % 11) as f64 / 11.0 - 0.5;
            records.extend_from_slice(&[x0, x1, f64::from(x0 > 0.0)]);
        }
        let w = logistic_spark(&c, &records, 2, 1.0, 20, 4);
        assert!(w[0] > 0.5, "weights {w:?}");
        assert!(w[0].abs() > 3.0 * w[1].abs());
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let c = ctx();
        let mut pts = Vec::new();
        for i in 0..200 {
            let jitter = ((i * 13) % 7) as f64 / 70.0;
            if i % 2 == 0 {
                pts.extend_from_slice(&[0.0 + jitter, 0.0]);
            } else {
                pts.extend_from_slice(&[10.0 + jitter, 10.0]);
            }
        }
        let init = [1.0, 1.0, 9.0, 9.0];
        let cents = kmeans_spark(&c, &pts, 2, &init, 10, 4);
        assert!((cents[0][0] - 0.0).abs() < 0.5, "{cents:?}");
        assert!((cents[1][0] - 10.0).abs() < 0.5, "{cents:?}");
    }
}
