//! The RDD subset: immutable, eagerly materialized, serialized between
//! stages — the three Spark overhead sources of paper §5.2, on purpose.

use crate::engine::SparkContext;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::hash::Hash;

/// Element bound shared by all RDD contents.
pub trait Record: Clone + Send + Sync + Serialize + DeserializeOwned {}
impl<T: Clone + Send + Sync + Serialize + DeserializeOwned> Record for T {}

/// Ship a freshly produced partition across a "stage boundary": serialize,
/// drop the original, deserialize. Models Spark's block-manager round-trip
/// (which happens even in local mode, as the paper observes).
fn ship<T: Record>(partition: Vec<T>) -> Vec<T> {
    let bytes = smart_wire::to_bytes(&partition).expect("stage serialization");
    smart_wire::from_bytes(&bytes).expect("stage deserialization")
}

/// Run `f` once per output partition index on the executor pool.
fn run_stage<R: Send>(ctx: &SparkContext, nparts: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let workers = ctx.workers().min(nparts.max(1));
    if nparts == 0 {
        return Vec::new();
    }
    // Static round-robin of partitions over executors.
    let mut per_worker: Vec<Vec<(R, std::time::Duration)>> =
        ctx.pool().run_on_workers(workers, |tid| {
            let mut acc = Vec::new();
            let mut p = tid;
            while p < nparts {
                let started = std::time::Instant::now();
                let r = f(p);
                acc.push((r, started.elapsed()));
                p += workers;
            }
            acc
        });
    // Stitch back into partition order.
    let mut out: Vec<Option<R>> = (0..nparts).map(|_| None).collect();
    let mut busy = vec![std::time::Duration::ZERO; nparts];
    for (tid, results) in per_worker.iter_mut().enumerate() {
        for (slot, (r, d)) in results.drain(..).enumerate() {
            out[tid + slot * workers] = Some(r);
            busy[tid + slot * workers] = d;
        }
    }
    ctx.record_stage(crate::StageStats { partition_busy: busy });
    out.into_iter().map(|r| r.expect("partition produced")).collect()
}

/// An immutable distributed dataset of `T`.
pub struct Rdd<'ctx, T> {
    ctx: &'ctx SparkContext,
    partitions: Vec<Vec<T>>,
}

impl<'ctx, T: Record> Rdd<'ctx, T> {
    /// Materialize `data` into `partitions` roughly equal partitions.
    pub fn from_vec(ctx: &'ctx SparkContext, data: Vec<T>, partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let n = data.len();
        let base = n / partitions;
        let extra = n % partitions;
        let mut parts = Vec::with_capacity(partitions);
        let mut iter = data.into_iter();
        for p in 0..partitions {
            let take = base + usize::from(p < extra);
            parts.push(iter.by_ref().take(take).collect());
        }
        Rdd { ctx, partitions: parts }
    }

    /// Partition count.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total records.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Record-wise transformation (new immutable RDD, shipped per stage).
    pub fn map<U: Record>(&self, f: impl Fn(&T) -> U + Sync) -> Rdd<'ctx, U> {
        let parts = run_stage(self.ctx, self.partitions.len(), |p| {
            ship(self.partitions[p].iter().map(&f).collect())
        });
        Rdd { ctx: self.ctx, partitions: parts }
    }

    /// Record-wise one-to-many transformation.
    pub fn flat_map<U: Record>(&self, f: impl Fn(&T) -> Vec<U> + Sync) -> Rdd<'ctx, U> {
        let parts = run_stage(self.ctx, self.partitions.len(), |p| {
            ship(self.partitions[p].iter().flat_map(&f).collect())
        });
        Rdd { ctx: self.ctx, partitions: parts }
    }

    /// Keep records satisfying `pred`.
    pub fn filter(&self, pred: impl Fn(&T) -> bool + Sync) -> Rdd<'ctx, T> {
        let parts = run_stage(self.ctx, self.partitions.len(), |p| {
            ship(self.partitions[p].iter().filter(|t| pred(t)).cloned().collect())
        });
        Rdd { ctx: self.ctx, partitions: parts }
    }

    /// Emit one key-value pair per record (the map side of MapReduce).
    pub fn map_to_pairs<K, V>(&self, f: impl Fn(&T) -> (K, V) + Sync) -> PairRdd<'ctx, K, V>
    where
        K: Record + Eq + Hash,
        V: Record,
    {
        let parts = run_stage(self.ctx, self.partitions.len(), |p| {
            ship(self.partitions[p].iter().map(&f).collect())
        });
        PairRdd { ctx: self.ctx, partitions: parts }
    }

    /// Gather all records at the driver.
    pub fn collect(&self) -> Vec<T> {
        self.partitions.iter().flat_map(|p| p.iter().cloned()).collect()
    }
}

/// A distributed dataset of key-value pairs.
pub struct PairRdd<'ctx, K, V> {
    ctx: &'ctx SparkContext,
    partitions: Vec<Vec<(K, V)>>,
}

impl<'ctx, K, V> PairRdd<'ctx, K, V>
where
    K: Record + Eq + Hash,
    V: Record,
{
    /// Partition count.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total emitted pairs.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// The MapReduce shuffle + reduce: hash-partition every emitted pair by
    /// key, **group all values per key**, then fold each group with `f`.
    ///
    /// The grouping step is the deliberate architectural cost: all `N×W`
    /// pairs exist in memory simultaneously before the first reduction —
    /// exactly what Smart's in-place reduction avoids (paper §2.3.3).
    pub fn reduce_by_key(&self, f: impl Fn(&V, &V) -> V + Sync) -> PairRdd<'ctx, K, V> {
        let nparts = self.partitions.len().max(1);

        // Shuffle write: each input partition buckets its pairs by target.
        let hash_of = |k: &K| {
            use std::hash::Hasher;
            let mut h = std::collections::hash_map::DefaultHasher::new();
            k.hash(&mut h);
            h.finish() as usize
        };
        let buckets: Vec<Vec<Vec<(K, V)>>> = run_stage(self.ctx, self.partitions.len(), |p| {
            let mut out: Vec<Vec<(K, V)>> = (0..nparts).map(|_| Vec::new()).collect();
            for (k, v) in &self.partitions[p] {
                out[hash_of(k) % nparts].push((k.clone(), v.clone()));
            }
            out.into_iter().map(ship).collect()
        });

        // Shuffle read + group + reduce per output partition.
        let parts = run_stage(self.ctx, nparts, |p| {
            let mut groups: HashMap<K, Vec<V>> = HashMap::new();
            for from in &buckets {
                for (k, v) in &from[p] {
                    groups.entry(k.clone()).or_default().push(v.clone());
                }
            }
            let reduced: Vec<(K, V)> = groups
                .into_iter()
                .map(|(k, vs)| {
                    let mut it = vs.into_iter();
                    let first = it.next().expect("group non-empty");
                    (k, it.fold(first, |acc, v| f(&acc, &v)))
                })
                .collect();
            ship(reduced)
        });
        PairRdd { ctx: self.ctx, partitions: parts }
    }

    /// Gather all pairs at the driver as a map.
    pub fn collect_map(&self) -> HashMap<K, V> {
        self.partitions.iter().flat_map(|p| p.iter().cloned()).collect()
    }

    /// Gather all pairs at the driver.
    pub fn collect(&self) -> Vec<(K, V)> {
        self.partitions.iter().flat_map(|p| p.iter().cloned()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SparkContext {
        SparkContext::with_service_threads(2, 0)
    }

    #[test]
    fn parallelize_partitions_evenly() {
        let c = ctx();
        let rdd = c.parallelize((0..10u32).collect(), 3);
        assert_eq!(rdd.num_partitions(), 3);
        assert_eq!(rdd.count(), 10);
        assert_eq!(rdd.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn map_and_filter_chain() {
        let c = ctx();
        let out =
            c.parallelize((0..100u64).collect(), 4).map(|x| x * 2).filter(|x| x % 4 == 0).collect();
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(|x| x % 4 == 0));
    }

    #[test]
    fn flat_map_expands() {
        let c = ctx();
        let out = c.parallelize(vec![1u8, 2, 3], 2).flat_map(|&x| vec![x; x as usize]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn reduce_by_key_sums_groups() {
        let c = ctx();
        let words = ["a", "b", "a", "c", "b", "a"];
        let counts = c
            .parallelize(words.iter().map(|s| s.to_string()).collect(), 3)
            .map_to_pairs(|w| (w.clone(), 1u64))
            .reduce_by_key(|a, b| a + b)
            .collect_map();
        assert_eq!(counts["a"], 3);
        assert_eq!(counts["b"], 2);
        assert_eq!(counts["c"], 1);
    }

    #[test]
    fn reduce_by_key_with_more_keys_than_partitions() {
        let c = ctx();
        let pairs = c
            .parallelize((0..1000i64).collect(), 4)
            .map_to_pairs(|&x| (x % 37, x))
            .reduce_by_key(|a, b| a + b);
        let m = pairs.collect_map();
        assert_eq!(m.len(), 37);
        let total: i64 = m.values().sum();
        assert_eq!(total, (0..1000).sum::<i64>());
    }

    #[test]
    fn empty_rdd_is_fine() {
        let c = ctx();
        let rdd: Rdd<'_, u32> = c.parallelize(vec![], 3);
        assert_eq!(rdd.count(), 0);
        assert!(rdd.map(|x| x + 1).collect().is_empty());
        let pairs = rdd.map_to_pairs(|&x| (x, 1u8)).reduce_by_key(|a, b| a + b);
        assert!(pairs.collect_map().is_empty());
    }

    #[test]
    fn stage_results_are_order_stable() {
        // run_stage stitches partitions back in order; mapping must preserve
        // global record order regardless of executor scheduling.
        let c = SparkContext::with_service_threads(4, 0);
        let out = c.parallelize((0..10_000u32).collect(), 16).map(|&x| x).collect();
        assert_eq!(out, (0..10_000).collect::<Vec<_>>());
    }
}
