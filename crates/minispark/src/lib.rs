//! # smart-minispark
//!
//! An RDD-architecture analytics engine: the stand-in for Spark 1.1.1 in
//! the Fig. 5 comparison.
//!
//! The paper attributes Spark's order-of-magnitude deficit to three
//! architectural costs (§5.2), all of which this engine reproduces
//! faithfully — in the same language and on the same thread substrate as
//! Smart, so the measured gap is attributable to architecture rather than
//! JVM-versus-native differences:
//!
//! 1. **Key-value emission + grouping.** Every `map` materializes its
//!    output records; `reduce_by_key` buckets all emitted pairs into
//!    per-key groups *before* any reduction runs, exactly like the
//!    map-side output → shuffle → reduce pipeline. Nothing reduces in
//!    place.
//! 2. **Immutability.** Every transformation produces a new dataset;
//!    buffers are never reused across operations or iterations.
//! 3. **Serialization.** Partitions are serialized and deserialized with
//!    `smart-wire` at every stage boundary, mirroring Spark shipping
//!    serialized RDDs through its block manager even in local mode.
//!
//! A fourth effect the paper calls out — Spark "launches extra threads for
//! other tasks, e.g., communication and driver's user interface", which
//! steals a core at full subscription — is modeled by
//! [`SparkContext::service_threads`] busy service threads.
//!
//! The API is a deliberately small RDD subset: [`Rdd::map`],
//! [`Rdd::flat_map`], [`Rdd::filter`], [`Rdd::map_to_pairs`],
//! [`PairRdd::reduce_by_key`], `collect`, `count`.

mod apps;
mod engine;
mod rdd;

pub use apps::{histogram_spark, kmeans_spark, logistic_spark};
pub use engine::{SparkContext, StageStats};
pub use rdd::{PairRdd, Rdd};
