//! Unix-domain-socket backend for co-located ranks: same framing as TCP
//! but over `AF_UNIX`, skipping the TCP/IP stack entirely. Socket files
//! live under the system temp directory, namespaced by process id and a
//! global counter so concurrent universes in one process never collide;
//! each rank unlinks its own socket file when it dies.

use super::mesh::{self, Fabric};
use super::Transport;
use smart_sync::atomic::{AtomicU64, Ordering};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Distinguishes universes created by the same process.
static UNIVERSE_COUNTER: AtomicU64 = AtomicU64::new(0);

pub(crate) struct UdsFabric;

impl Fabric for UdsFabric {
    type Addr = PathBuf;
    type Stream = UnixStream;
    type Listener = UnixListener;

    fn bind(rank: usize) -> io::Result<(UnixListener, PathBuf)> {
        // One counter bump per *socket*; uniqueness per path is all that
        // matters, so rank is included only for debuggability.
        let id = UNIVERSE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "smart-uds-{}-{}-r{}.sock",
            std::process::id(),
            id,
            rank
        ));
        let listener = UnixListener::bind(&path)?;
        Ok((listener, path))
    }

    fn accept(listener: &UnixListener) -> io::Result<UnixStream> {
        let (stream, _peer) = listener.accept()?;
        Ok(stream)
    }

    fn connect(addr: &PathBuf) -> io::Result<UnixStream> {
        UnixStream::connect(addr)
    }

    fn cleanup(addr: &PathBuf) {
        // Unlinking the socket file is the one legitimate filesystem write
        // in the transport layer: it is cleanup of our own endpoint, not
        // experiment output. lint:allow(no-fs-writes)
        let _ = std::fs::remove_file(addr);
    }
}

/// Build the `n` endpoints of a Unix-domain-socket mesh.
pub(crate) fn build(n: usize) -> Vec<Box<dyn Transport>> {
    mesh::build::<UdsFabric>(n)
}
