//! TCP-loopback backend: every rank listens on an ephemeral `127.0.0.1`
//! port; frames are length-prefixed (see [`mesh`](super::mesh) for the wire
//! layout). `TCP_NODELAY` is set on every stream — frames are small and
//! latency-sensitive (collective rounds, stream credits), so Nagle
//! batching only hurts.

use super::mesh::{self, Fabric};
use super::Transport;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};

pub(crate) struct TcpFabric;

impl Fabric for TcpFabric {
    type Addr = SocketAddr;
    type Stream = TcpStream;
    type Listener = TcpListener;

    fn bind(_rank: usize) -> io::Result<(TcpListener, SocketAddr)> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        Ok((listener, addr))
    }

    fn accept(listener: &TcpListener) -> io::Result<TcpStream> {
        let (stream, _peer) = listener.accept()?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn connect(addr: &SocketAddr) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }
}

/// Build the `n` endpoints of a TCP-loopback mesh.
pub(crate) fn build(n: usize) -> Vec<Box<dyn Transport>> {
    mesh::build::<TcpFabric>(n)
}
