//! The in-process channel backend: rank → thread, send → channel push.
//!
//! This is the original `smart-comm` fabric moved behind [`Transport`]. It
//! is the default for tests and the only backend compiled under loom. Every
//! endpoint holds a clone of every peer's sender, so the mesh stays
//! connected as long as any rank is alive; a send only fails once the
//! destination's receiver has been dropped.

use super::{Frame, Polled, Transport, DEATH_TAG};
use crate::error::{CommError, CommResult};
use crate::Tag;
use smart_sync::channel::{self, Receiver, Sender};
use std::time::Duration;

pub(crate) struct ChannelTransport {
    rank: usize,
    senders: Vec<Sender<Frame>>,
    rx: Receiver<Frame>,
}

/// Build the `n` endpoints of a channel mesh.
pub(crate) fn build(n: usize) -> Vec<Box<dyn Transport>> {
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel::unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, rx)| {
            Box::new(ChannelTransport { rank, senders: senders.clone(), rx }) as Box<dyn Transport>
        })
        .collect()
}

impl Transport for ChannelTransport {
    fn send(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> CommResult<()> {
        let sender = self
            .senders
            .get(dest)
            .ok_or(CommError::RankOutOfRange { rank: dest, size: self.senders.len() })?;
        sender
            .send(Frame { src: self.rank, tag, payload })
            .map_err(|_| CommError::PeerGone { peer: dest })
    }

    fn recv(&mut self) -> Option<Frame> {
        self.rx.recv().ok()
    }

    fn try_recv(&mut self) -> Polled {
        match self.rx.try_recv() {
            Ok(frame) => Polled::Frame(frame),
            Err(channel::TryRecvError::Empty) => Polled::Empty,
            Err(channel::TryRecvError::Disconnected) => Polled::Closed,
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Polled {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Polled::Frame(frame),
            Err(channel::RecvTimeoutError::Timeout) => Polled::Empty,
            Err(channel::RecvTimeoutError::Disconnected) => Polled::Closed,
        }
    }

    fn notify_death(&mut self) {
        // Best-effort: a peer whose mailbox is already gone does not need
        // the notice.
        for dest in 0..self.senders.len() {
            if dest != self.rank {
                let _ = self.senders[dest].send(Frame {
                    src: self.rank,
                    tag: DEATH_TAG,
                    payload: Vec::new(),
                });
            }
        }
    }
}
