//! Generic socket mesh shared by the TCP and Unix-domain backends.
//!
//! Topology: every rank owns one listener; connections are **unidirectional**
//! (rank a's traffic to rank b flows over a stream a opened to b's listener,
//! b's traffic to a over a separate stream). Outgoing connections are opened
//! lazily on first send. An accepted connection starts with an 8-byte
//! little-endian *hello* carrying the sender's rank; after that it carries
//! frames:
//!
//! ```text
//! [tag: u64 LE][payload len: u64 LE][payload bytes]
//! ```
//!
//! Each accepted connection gets a dedicated reader thread that decodes
//! frames and pushes them into the endpoint's unbounded event queue. Readers
//! drain their sockets eagerly, so a sender's `write` never blocks on the
//! receiving *protocol* being slow — the no-blocking-send contract ring
//! collectives rely on. On EOF or a read error the reader synthesizes a
//! death notice from its peer, which is how an abrupt disconnect surfaces as
//! [`PeerGone`](crate::CommError::PeerGone) rather than a hang.
//!
//! Death protocol: `notify_death` writes a [`DEATH_TAG`] frame on every
//! established outgoing stream, *connects out* to every peer it never talked
//! to just to deliver hello + death (so a rank that dies silently still
//! wakes receivers that never heard from it), then wakes its own acceptor
//! with a self-connection so the listener shuts down.

use super::{Frame, Polled, Transport, DEATH_TAG};
use crate::error::{CommError, CommResult};
use crate::Tag;
use smart_sync::atomic::{AtomicBool, Ordering};
use smart_sync::channel::{self, Receiver, Sender};
use smart_sync::Arc;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Sanity cap on a decoded frame length: a corrupt or hostile stream must
/// not trigger a huge allocation. Far above any real reduction map.
const MAX_FRAME_LEN: u64 = 1 << 32;

/// The socket flavour a mesh runs over: how to bind, accept, and connect.
pub(crate) trait Fabric: Send + Sync + 'static {
    type Addr: Clone + Send + Sync + 'static;
    type Stream: Read + Write + Send + 'static;
    type Listener: Send + 'static;

    /// Bind a fresh listener for `rank` and return it with its address.
    fn bind(rank: usize) -> io::Result<(Self::Listener, Self::Addr)>;
    /// Block for the next inbound connection.
    fn accept(listener: &Self::Listener) -> io::Result<Self::Stream>;
    /// Open a connection to `addr`.
    fn connect(addr: &Self::Addr) -> io::Result<Self::Stream>;
    /// Release any on-disk resource behind `addr` (socket files).
    fn cleanup(_addr: &Self::Addr) {}
}

pub(crate) struct MeshTransport<F: Fabric> {
    rank: usize,
    addrs: Arc<Vec<F::Addr>>,
    /// Lazily opened outgoing streams, one per peer.
    outgoing: Vec<Option<F::Stream>>,
    events_rx: Receiver<Frame>,
    /// Kept alive so the event queue never disconnects while the endpoint
    /// exists ([`Polled::Closed`] is defensive, not expected).
    _events_tx: Sender<Frame>,
    shutdown: Arc<AtomicBool>,
}

/// Build the `n` endpoints of a socket mesh over fabric `F`.
///
/// All listeners are bound before any endpoint is handed out, so a lazy
/// connect from any rank always finds its peer listening.
pub(crate) fn build<F: Fabric>(n: usize) -> Vec<Box<dyn Transport>> {
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for rank in 0..n {
        // PANIC-FREE: loopback bind at cluster launch; no ranks are running yet, so failing fast is safe and the only useful behavior.
        let (listener, addr) = F::bind(rank).expect("transport: failed to bind listener");
        listeners.push(listener);
        addrs.push(addr);
    }
    let addrs = Arc::new(addrs);
    listeners
        .into_iter()
        .enumerate()
        .map(|(rank, listener)| {
            let (events_tx, events_rx) = channel::unbounded();
            let shutdown = Arc::new(AtomicBool::new(false));
            spawn_acceptor::<F>(listener, n, Sender::clone(&events_tx), Arc::clone(&shutdown));
            Box::new(MeshTransport::<F> {
                rank,
                addrs: Arc::clone(&addrs),
                outgoing: (0..n).map(|_| None).collect(),
                events_rx,
                _events_tx: events_tx,
                shutdown,
            }) as Box<dyn Transport>
        })
        .collect()
}

/// Accept loop: one detached thread per endpoint. Exits when the shutdown
/// flag is set and a (self-)connection wakes it.
fn spawn_acceptor<F: Fabric>(
    listener: F::Listener,
    size: usize,
    events_tx: Sender<Frame>,
    shutdown: Arc<AtomicBool>,
) {
    smart_sync::thread::spawn(move || loop {
        let stream = match F::accept(&listener) {
            Ok(s) => s,
            Err(_) => break,
        };
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let tx = Sender::clone(&events_tx);
        smart_sync::thread::spawn(move || reader_loop(stream, size, tx));
    });
}

/// Per-connection reader: hello, then frames until death / EOF / error.
fn reader_loop<S: Read>(mut stream: S, size: usize, events_tx: Sender<Frame>) {
    let mut hello = [0u8; 8];
    if stream.read_exact(&mut hello).is_err() {
        return; // never identified itself: nothing to report
    }
    let src = u64::from_le_bytes(hello) as usize;
    if src >= size {
        return; // not a rank of this universe
    }
    loop {
        let mut header = [0u8; 16];
        if stream.read_exact(&mut header).is_err() {
            // Abrupt disconnect: surface as a death notice so receivers get
            // PeerGone instead of hanging.
            let _ = events_tx.send(Frame { src, tag: DEATH_TAG, payload: Vec::new() });
            return;
        }
        // PANIC-FREE: constant split of a fixed 16-byte header; both halves are exactly 8 bytes.
        let tag = Tag::from_le_bytes(header[..8].try_into().expect("8-byte slice"));
        // PANIC-FREE: constant split of a fixed 16-byte header; both halves are exactly 8 bytes.
        let len = u64::from_le_bytes(header[8..].try_into().expect("8-byte slice"));
        if len > MAX_FRAME_LEN {
            let _ = events_tx.send(Frame { src, tag: DEATH_TAG, payload: Vec::new() });
            return;
        }
        let mut payload = vec![0u8; len as usize];
        if stream.read_exact(&mut payload).is_err() {
            let _ = events_tx.send(Frame { src, tag: DEATH_TAG, payload: Vec::new() });
            return;
        }
        let done = tag == DEATH_TAG;
        let _ = events_tx.send(Frame { src, tag, payload });
        if done {
            return;
        }
    }
}

impl<F: Fabric> MeshTransport<F> {
    /// The established outgoing stream to `dest`, connecting (hello
    /// included) on first use.
    // PANIC-FREE: dest is a communicator-validated rank < size, and outgoing/addrs have one slot per rank.
    fn stream_to(&mut self, dest: usize) -> CommResult<&mut F::Stream> {
        if self.outgoing[dest].is_none() {
            let mut stream =
                F::connect(&self.addrs[dest]).map_err(|_| CommError::PeerGone { peer: dest })?;
            stream
                .write_all(&(self.rank as u64).to_le_bytes())
                .map_err(|_| CommError::PeerGone { peer: dest })?;
            self.outgoing[dest] = Some(stream);
        }
        // PANIC-FREE: the branch above filled the slot if it was empty.
        Ok(self.outgoing[dest].as_mut().expect("just connected"))
    }
}

// PANIC-FREE: constant ranges into a fixed 16-byte header.
fn write_frame<S: Write>(stream: &mut S, tag: Tag, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 16];
    header[..8].copy_from_slice(&tag.to_le_bytes());
    header[8..].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    stream.write_all(&header)?;
    stream.write_all(payload)
}

impl<F: Fabric> Transport for MeshTransport<F> {
    // PANIC-FREE: dest is a communicator-validated rank; outgoing has one slot per rank.
    fn send(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> CommResult<()> {
        let stream = self.stream_to(dest)?;
        if write_frame(stream, tag, &payload).is_err() {
            // Connection reset: drop the stream so a later send re-connects
            // (and re-discovers the death) instead of reusing a broken pipe.
            self.outgoing[dest] = None;
            return Err(CommError::PeerGone { peer: dest });
        }
        Ok(())
    }

    fn recv(&mut self) -> Option<Frame> {
        self.events_rx.recv().ok()
    }

    fn try_recv(&mut self) -> Polled {
        match self.events_rx.try_recv() {
            Ok(frame) => Polled::Frame(frame),
            Err(channel::TryRecvError::Empty) => Polled::Empty,
            Err(channel::TryRecvError::Disconnected) => Polled::Closed,
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Polled {
        match self.events_rx.recv_timeout(timeout) {
            Ok(frame) => Polled::Frame(frame),
            Err(channel::RecvTimeoutError::Timeout) => Polled::Empty,
            Err(channel::RecvTimeoutError::Disconnected) => Polled::Closed,
        }
    }

    // PANIC-FREE: dest ranges over 0..size = addrs.len() = outgoing.len(), and rank < size.
    fn notify_death(&mut self) {
        let size = self.addrs.len();
        for dest in 0..size {
            if dest == self.rank {
                continue;
            }
            match self.outgoing[dest].as_mut() {
                Some(stream) => {
                    let _ = write_frame(stream, DEATH_TAG, &[]);
                    let _ = stream.flush();
                }
                None => {
                    // Never talked to this peer: connect out just to deliver
                    // hello + death, so a receiver blocked on us wakes with
                    // PeerGone even though we never sent it data.
                    if let Ok(mut stream) = F::connect(&self.addrs[dest]) {
                        let _ = stream.write_all(&(self.rank as u64).to_le_bytes());
                        let _ = write_frame(&mut stream, DEATH_TAG, &[]);
                        let _ = stream.flush();
                    }
                }
            }
        }
        // Wake our own acceptor so it drops the listener and exits.
        self.shutdown.store(true, Ordering::Release);
        drop(F::connect(&self.addrs[self.rank]));
        F::cleanup(&self.addrs[self.rank]);
    }
}
