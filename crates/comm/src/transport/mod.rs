//! Pluggable fabric beneath [`Communicator`](crate::Communicator).
//!
//! A [`Transport`] moves opaque *frames* — `(src, tag, payload)` triples —
//! between ranks. Everything above it (mailbox matching, collectives, the
//! credit-windowed stream protocol, fault detection) is transport-agnostic:
//! the same protocol state machines run over an in-process channel mesh, TCP
//! loopback sockets, or Unix-domain sockets.
//!
//! ## Trait contract
//!
//! * **FIFO per (src, dest) pair.** Frames from one sender arrive in the
//!   order they were sent. No ordering is promised across senders.
//! * **Death notices.** A rank that is going away calls
//!   [`notify_death`](Transport::notify_death) exactly once; every peer
//!   eventually observes a frame from it tagged [`DEATH_TAG`]. FIFO order
//!   guarantees the death notice follows all real traffic from that rank, so
//!   receivers can drain pending data before reporting
//!   [`PeerGone`](crate::CommError::PeerGone).
//! * **Sends never block on the receiver.** Frames queue in the fabric
//!   (channel buffers, socket buffers plus an unbounded reader-side queue);
//!   a send may only fail fast with `PeerGone`. This is what keeps ring
//!   collectives — where both neighbours send before they receive —
//!   deadlock-free on every backend.
//! * **Sends to dead peers.** The channel backend fails fast once the
//!   peer's receiver is gone; socket backends may buffer a send to a dead
//!   peer successfully (the OS accepts it) and surface the death on a later
//!   send or via the death notice. Protocols must treat `PeerGone` from
//!   *either* side as authoritative and never rely on sends failing.
//!
//! Backend selection: [`CommConfig::transport`](crate::CommConfig) wins if
//! set; otherwise the `SMART_TRANSPORT` environment variable (`inproc`,
//! `tcp`, `uds`); otherwise in-process channels.

use crate::error::CommResult;
use crate::Tag;
use std::time::Duration;

mod channel;
#[cfg(not(loom))]
mod mesh;
#[cfg(not(loom))]
mod tcp;
#[cfg(not(loom))]
mod uds;

/// Control tag carried by the "death notice" a rank broadcasts when its
/// communicator is dropped, so peers blocked on it wake up with
/// [`PeerGone`](crate::CommError::PeerGone) instead of hanging forever.
/// Reserved: user code and collectives never use this tag (the point claim
/// is recorded in [`tags`](crate::tags)).
pub use crate::tags::DEATH_TAG;

/// One delivered message: who sent it, its tag, and the payload bytes.
#[derive(Debug)]
pub struct Frame {
    /// Sending rank.
    pub src: usize,
    /// Message tag ([`DEATH_TAG`] for death notices).
    pub tag: Tag,
    /// Opaque payload (empty for death notices).
    pub payload: Vec<u8>,
}

/// Result of a non-blocking poll on a transport.
#[derive(Debug)]
pub enum Polled {
    /// A frame was available.
    Frame(Frame),
    /// Nothing available right now (or the timeout elapsed).
    Empty,
    /// The fabric itself shut down — no more frames will ever arrive.
    Closed,
}

/// A rank's endpoint on the message fabric. See the [module docs](self)
/// for the semantic contract every backend must uphold.
pub trait Transport: Send {
    /// Queue `payload` for delivery to `dest` under `tag`. Must not block
    /// waiting for the receiver to drain.
    fn send(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> CommResult<()>;

    /// Block until the next frame (from any peer) arrives. `None` means the
    /// fabric is closed and nothing will ever arrive again.
    fn recv(&mut self) -> Option<Frame>;

    /// Non-blocking poll for the next frame.
    fn try_recv(&mut self) -> Polled;

    /// Block up to `timeout` for the next frame; [`Polled::Empty`] on expiry.
    fn recv_timeout(&mut self, timeout: Duration) -> Polled;

    /// Broadcast this rank's death notice (a [`DEATH_TAG`] frame) to every
    /// peer, best-effort, and release fabric resources (reader threads,
    /// listeners, socket files). Called exactly once, from
    /// [`Communicator::drop`](crate::Communicator).
    fn notify_death(&mut self);
}

/// Which fabric a universe runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process channel mesh (the default; the only backend under loom).
    #[default]
    InProcess,
    /// TCP over loopback, length-prefixed frames, one connection per
    /// directed peer pair.
    Tcp,
    /// Unix-domain sockets, same framing as TCP; for co-located ranks.
    Uds,
}

impl TransportKind {
    /// Resolve the backend from the `SMART_TRANSPORT` environment variable
    /// (`inproc` / `tcp` / `uds`, case-insensitive). Unknown or unset values
    /// fall back to [`TransportKind::InProcess`].
    pub fn from_env() -> TransportKind {
        match std::env::var("SMART_TRANSPORT") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "tcp" => TransportKind::Tcp,
                "uds" | "unix" => TransportKind::Uds,
                _ => TransportKind::InProcess,
            },
            Err(_) => TransportKind::InProcess,
        }
    }
}

/// Build the `n` connected endpoints of a fresh fabric.
pub(crate) fn build(kind: TransportKind, n: usize) -> Vec<Box<dyn Transport>> {
    match kind {
        TransportKind::InProcess => channel::build(n),
        #[cfg(not(loom))]
        TransportKind::Tcp => tcp::build(n),
        #[cfg(not(loom))]
        TransportKind::Uds => uds::build(n),
        #[cfg(loom)]
        // PANIC-FREE: loom model-checking builds only ever construct the in-process fabric.
        _ => panic!("only the in-process transport is available under loom"),
    }
}
