//! Message cost model and communicator configuration.
//!
//! In-process message passing is orders of magnitude cheaper than a cluster
//! interconnect. For experiments whose *shape* depends on synchronization
//! overhead (node-scaling in Fig. 7, the histogram case in Fig. 10), the
//! harness enables a simple latency/bandwidth (α–β) cost model: delivering a
//! message of `s` bytes costs `α + s/β` of wall-clock time, charged at the
//! sender.

use std::time::{Duration, Instant};

/// α–β per-message cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Fixed per-message latency (α).
    pub latency: Duration,
    /// Link bandwidth in bytes per second (β).
    pub bytes_per_sec: f64,
}

impl CostModel {
    /// A model with latency `alpha` and bandwidth `bytes_per_sec`.
    pub fn new(alpha: Duration, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        CostModel { latency: alpha, bytes_per_sec }
    }

    /// A rough commodity-cluster interconnect: 25 µs latency, 1 GB/s.
    pub fn commodity_cluster() -> Self {
        CostModel::new(Duration::from_micros(25), 1e9)
    }

    /// The modeled cost of sending `bytes`.
    pub fn message_cost(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Charge the cost of a `bytes`-sized message to the calling thread.
    ///
    /// Sub-millisecond costs are spun (sleep granularity would distort
    /// them); larger costs sleep.
    pub fn charge(&self, bytes: usize) {
        let cost = self.message_cost(bytes);
        if cost >= Duration::from_millis(1) {
            smart_sync::thread::sleep(cost);
        } else {
            let start = Instant::now();
            while start.elapsed() < cost {
                std::hint::spin_loop();
            }
        }
    }
}

/// Configuration shared by all ranks of a cluster.
#[derive(Debug, Clone, Default)]
pub struct CommConfig {
    /// Optional per-message cost model.
    pub cost: Option<CostModel>,
    /// When true, the *cost-charging* portion of every send serializes on a
    /// cluster-wide lock — modeling the paper's space-sharing caveat that
    /// "only a single thread can call MPI function at a time" (§5.6). The
    /// lock is never held across a blocking receive, so it cannot deadlock.
    pub serialized_sends: bool,
    /// Which fabric the universe runs on. `None` (the default) consults the
    /// `SMART_TRANSPORT` environment variable and falls back to the
    /// in-process channel mesh.
    pub transport: Option<crate::transport::TransportKind>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_combines_alpha_and_beta() {
        let m = CostModel::new(Duration::from_micros(100), 1e6); // 1 MB/s
        let c = m.message_cost(1_000_000);
        // 100 µs + 1 s
        assert!(c >= Duration::from_secs(1));
        assert!(c < Duration::from_millis(1200));
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let m = CostModel::new(Duration::from_micros(50), 1e9);
        assert_eq!(m.message_cost(0), Duration::from_micros(50));
    }

    #[test]
    fn charge_takes_at_least_the_modeled_time() {
        let m = CostModel::new(Duration::from_micros(200), 1e9);
        let start = Instant::now();
        m.charge(0);
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_is_rejected() {
        let _ = CostModel::new(Duration::ZERO, 0.0);
    }

    #[test]
    fn commodity_preset_is_sane() {
        let m = CostModel::commodity_cluster();
        assert!(m.message_cost(1 << 20) > m.latency);
    }
}
