//! # smart-comm
//!
//! An in-process "cluster": the MPI stand-in underneath the Smart runtime.
//!
//! The paper runs Smart on MPI across cluster nodes. This reproduction maps
//! **rank → thread** and **node memory → rank-owned buffers**, keeping the
//! programming model identical:
//!
//! * [`run_cluster`] launches an SPMD region — one closure instance per rank,
//!   exactly like `mpirun` launching one process per node. This is the
//!   *parallel programming view* half of Smart's hybrid view (§2.3.2).
//! * [`Communicator`] provides typed point-to-point [`send`](Communicator::send)
//!   / [`recv`](Communicator::recv) (used by the simulations' halo
//!   exchanges) and the collectives Smart's global combination needs:
//!   [`barrier`](Communicator::barrier), [`broadcast`](Communicator::broadcast),
//!   [`reduce`](Communicator::reduce), [`allreduce`](Communicator::allreduce),
//!   [`gather`](Communicator::gather), [`allgather`](Communicator::allgather)
//!   and [`scatter`](Communicator::scatter). Broadcast, reduce and gather
//!   are binomial trees, as in MPICH's small-message algorithms; for the
//!   large maps of global combination there are bandwidth-optimal ring
//!   collectives — [`reduce_scatter`](Communicator::reduce_scatter),
//!   [`allgather_ring`](Communicator::allgather_ring) and the
//!   shard-partitioned [`allreduce_sharded`](Communicator::allreduce_sharded)
//!   that spreads combination-map traffic evenly across ranks instead of
//!   funnelling it through the root.
//! * Messages are serialized with [`smart_wire`] — matching the paper's
//!   observation (§5.3) that global combination pays a serialization cost
//!   for map-structured reduction objects.
//! * A configurable [`CostModel`] injects per-message latency and bandwidth
//!   costs so scaling experiments see realistic synchronization overhead
//!   instead of shared-memory message passing that is effectively free.
//! * [`CommConfig::serialized_sends`] emulates the paper's
//!   `MPI_THREAD_MULTIPLE` caveat (§3.3, §5.6): when simulation and
//!   analytics tasks communicate concurrently in space-sharing mode, their
//!   message-passing serializes on one big lock.
//!
//! ```
//! use smart_comm::run_cluster;
//!
//! // 4 "nodes" each contribute rank+1; allreduce sums across the cluster.
//! let results = run_cluster(4, |mut comm| {
//!     comm.allreduce(comm.rank() as u64 + 1, |a, b| a + b).unwrap()
//! });
//! assert_eq!(results, vec![10, 10, 10, 10]);
//! ```

mod collectives;
mod communicator;
mod cost;
mod error;
pub mod stream;
pub mod tags;
pub mod transport;

pub use collectives::{merge_sorted_entries, shard_of};
pub use communicator::{Communicator, Mailbox, Tag};
pub use cost::{CommConfig, CostModel};
pub use error::{CommError, CommResult};
pub use stream::{
    StreamConfig, StreamReceiver, StreamRecvStats, StreamSendStats, StreamSender, STREAM_BASE,
};
pub use transport::{Frame, Polled, Transport, TransportKind};

use smart_sync::Arc;

/// Create the `n` communicators of a fresh cluster without spawning any
/// threads. The caller distributes them to its own tasks — the building
/// block for partitioned topologies (e.g. in-transit analytics, where
/// staging ranks additionally share a *second*, staging-only universe for
/// their global combination). [`run_cluster`] remains the convenience path
/// for plain SPMD regions.
pub fn universe(n: usize, config: CommConfig) -> Vec<Communicator> {
    assert!(n > 0, "a cluster needs at least one rank");
    Communicator::universe(n, Arc::new(config))
}

/// Launch an SPMD region over `n` ranks with default configuration.
///
/// Each rank runs `f(comm)` on its own thread; the call blocks until every
/// rank returns and yields the per-rank results in rank order.
///
/// # Panics
/// Panics if any rank panics (the panic is propagated with its rank).
pub fn run_cluster<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Sync,
{
    run_cluster_with(n, CommConfig::default(), f)
}

/// [`run_cluster`] with an explicit configuration (cost model, lock mode).
pub fn run_cluster_with<R, F>(n: usize, config: CommConfig, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Sync,
{
    assert!(n > 0, "a cluster needs at least one rank");
    let comms = Communicator::universe(n, Arc::new(config));
    let f = &f;
    smart_sync::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for comm in comms {
            let rank = comm.rank();
            let handle = smart_sync::thread::Builder::new()
                .name(format!("smart-rank-{rank}"))
                .spawn_scoped(scope, move || f(comm))
                // PANIC-FREE: spawn fails only on OS thread exhaustion at launch; this API documents "# Panics".
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(v) => v,
                Err(e) => {
                    std::panic::resume_unwind(Box::new(format!("rank {rank} panicked: {e:?}"))
                        as Box<dyn std::any::Any + Send>)
                }
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_cluster_works() {
        let r = run_cluster(1, |mut comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.allreduce(5u32, |a, b| a + b).unwrap()
        });
        assert_eq!(r, vec![5]);
    }

    #[test]
    fn ranks_are_distinct_and_results_ordered() {
        let r = run_cluster(7, |comm| comm.rank());
        assert_eq!(r, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn ring_pass_point_to_point() {
        // Each rank sends its rank to the next and receives from the
        // previous; exercises p2p matching with concurrent traffic.
        let n = 6;
        let r = run_cluster(n, |mut comm| {
            let next = (comm.rank() + 1) % n;
            let prev = (comm.rank() + n - 1) % n;
            comm.send(next, 7, &comm.rank()).unwrap();
            comm.recv::<usize>(prev, 7).unwrap()
        });
        for (rank, got) in r.iter().enumerate() {
            assert_eq!(*got, (rank + n - 1) % n);
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let r = run_cluster(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &"first".to_string()).unwrap();
                comm.send(1, 2, &"second".to_string()).unwrap();
                String::new()
            } else {
                // Receive in reverse tag order: tag-1 message must wait in
                // the pending buffer while we match tag 2.
                let second: String = comm.recv(0, 2).unwrap();
                let first: String = comm.recv(0, 1).unwrap();
                format!("{first}|{second}")
            }
        });
        assert_eq!(r[1], "first|second");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_rank_cluster_panics() {
        run_cluster(0, |_c| ());
    }

    #[test]
    fn panic_in_rank_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_cluster(2, |comm| {
                if comm.rank() == 1 {
                    panic!("boom");
                }
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn cluster_with_cost_model_still_correct() {
        let config = CommConfig {
            cost: Some(CostModel::new(std::time::Duration::from_micros(50), 100_000_000.0)),
            ..CommConfig::default()
        };
        let r = run_cluster_with(4, config, |mut comm| comm.allreduce(1u64, |a, b| a + b).unwrap());
        assert_eq!(r, vec![4, 4, 4, 4]);
    }

    #[test]
    fn serialized_sends_mode_is_deadlock_free() {
        let config = CommConfig { serialized_sends: true, ..CommConfig::default() };
        let r = run_cluster_with(4, config, |mut comm| {
            let mut acc = 0u64;
            for round in 0..10 {
                acc = comm.allreduce(comm.rank() as u64 + round, |a, b| a + b).unwrap();
            }
            acc
        });
        assert!(r.iter().all(|&v| v == (1 + 2 + 3) + 4 * 9));
    }
}
