//! Credit-based streaming transport for in-transit analytics.
//!
//! In-transit placement partitions the cluster: simulation ranks stream
//! wire-serialized time-step chunks to a smaller set of *staging* ranks
//! that run the analytics. The transport here is the producer↔stager wire:
//!
//! * **Double-buffered async sends** — [`StreamSender::feed`] serializes the
//!   time-step into a fresh payload and hands it to the (queued,
//!   non-blocking) channel transport, so the simulation resumes immediately
//!   while the previous chunk is still in flight. The only blocking point
//!   is flow control.
//! * **Bounded credit window** — a producer may have at most
//!   [`StreamConfig::window`] un-consumed time-step chunks outstanding. The
//!   stager returns one credit per chunk *as it consumes it*, so a slow
//!   stager throttles its producers to `window` steps of lookahead instead
//!   of letting them flood its mailbox and OOM the staging node. The
//!   stager-side buffered payload is therefore bounded by `window ×
//!   max-chunk-bytes` per producer ([`StreamRecvStats::buffered_bytes_peak`]
//!   observes the bound).
//! * **Batching/coalescing knobs** — up to [`StreamConfig::batch_steps`]
//!   chunks ride in one wire message (flushed early past
//!   [`StreamConfig::max_batch_bytes`]), trading per-message overhead
//!   against latency.
//! * **Clean termination** — [`StreamSender::finish`] flushes the tail and
//!   marks end-of-stream; [`StreamReceiver::recv`] then yields `None`. A
//!   stager that dies mid-stream surfaces to its producers as
//!   [`CommError::PeerGone`] (on the next credit wait or data send), never
//!   a hang; a producer that dies surfaces the same way on the stager's
//!   next data receive.
//!
//! Tags in [`STREAM_BASE`]`..STREAM_LIMIT` are reserved for this transport
//! (the claim is recorded in [`tags`](crate::tags)); user point-to-point
//! traffic should stay in the `USER` range.

use crate::communicator::{Communicator, Tag};
use crate::error::{CommError, CommResult};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// First tag value reserved for streaming transport traffic (the claim is
/// recorded in [`tags`](crate::tags)).
pub use crate::tags::STREAM_BASE;
/// Producer → stager data batches.
const DATA_TAG: Tag = STREAM_BASE | 1;
/// Stager → producer credit grants.
const CREDIT_TAG: Tag = STREAM_BASE | 2;

/// Flow-control and coalescing knobs for one producer→stager stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Maximum un-consumed time-step chunks in flight. Backpressure bound:
    /// the stager buffers at most this many steps of this producer's data.
    pub window: usize,
    /// Coalesce up to this many time-step chunks per wire message. Must not
    /// exceed `window` (a full batch needs that many credits to depart).
    pub batch_steps: usize,
    /// Flush the current batch early once its serialized payload reaches
    /// this many bytes.
    pub max_batch_bytes: usize,
    /// Keep sent chunks buffered until their credit comes back (TCP-style
    /// retransmission queue). Under this mode a credit is an
    /// *acknowledgement*: the receiver grants it only once the chunk's data
    /// is durably combined, and [`StreamSender::failover`] can replay the
    /// unacknowledged window to a replacement receiver after the original
    /// dies. Costs one buffered copy of at most `window` chunks.
    pub retain_unacked: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { window: 4, batch_steps: 1, max_batch_bytes: 1 << 20, retain_unacked: false }
    }
}

impl StreamConfig {
    /// A window of `window` steps, one step per message.
    pub fn with_window(window: usize) -> Self {
        StreamConfig { window, ..Default::default() }
    }

    /// Set the per-message coalescing limit.
    pub fn with_batch(mut self, batch_steps: usize, max_batch_bytes: usize) -> Self {
        self.batch_steps = batch_steps;
        self.max_batch_bytes = max_batch_bytes;
        self
    }

    /// Enable the unacknowledged-chunk retransmission buffer (see
    /// [`retain_unacked`](Self::retain_unacked)).
    pub fn with_retain_unacked(mut self, retain: bool) -> Self {
        self.retain_unacked = retain;
        self
    }

    fn validate(&self) {
        assert!(self.window > 0, "stream window must be positive");
        assert!(self.batch_steps > 0, "batch_steps must be positive");
        assert!(
            self.batch_steps <= self.window,
            "batch_steps ({}) must not exceed the credit window ({})",
            self.batch_steps,
            self.window
        );
        assert!(self.max_batch_bytes > 0, "max_batch_bytes must be positive");
    }
}

/// One wire-serialized time-step partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ChunkMsg {
    /// Time-step sequence number (0-based, per stream).
    step: u64,
    /// First global element index of the partition this chunk carries.
    offset: u64,
    /// `smart_wire`-encoded `&[T]` payload.
    payload: Vec<u8>,
}

/// A coalesced batch of chunks, optionally carrying end-of-stream.
#[derive(Debug, Serialize, Deserialize)]
struct BatchMsg {
    chunks: Vec<ChunkMsg>,
    eos: bool,
}

/// Producer-side stream counters.
#[derive(Debug, Clone, Default)]
pub struct StreamSendStats {
    /// Total time inside [`StreamSender::feed`]/[`StreamSender::finish`]
    /// (serialization + transport + credit waits) — the time-step latency
    /// the *simulation* observes from analytics.
    pub send_busy: Duration,
    /// Portion of [`send_busy`](Self::send_busy) spent blocked waiting for
    /// credits — pure backpressure from a slower stager.
    pub credit_wait: Duration,
    /// Serialized bytes shipped (batch framing included).
    pub bytes: u64,
    /// Time-step chunks sent.
    pub steps: u64,
    /// Wire messages sent (≤ steps when coalescing).
    pub batches: u64,
    /// Times the stream was re-pointed at a replacement receiver after the
    /// original died ([`StreamSender::failover`]).
    pub reroutes: u64,
    /// Chunks retransmitted out of the unacknowledged buffer on failover.
    pub replayed: u64,
}

/// The producer (simulation-side) end of a stream.
///
/// Owned by exactly one rank; every call takes the rank's communicator.
pub struct StreamSender<T> {
    peer: usize,
    cfg: StreamConfig,
    credits: usize,
    next_step: u64,
    batch: Vec<ChunkMsg>,
    batch_bytes: usize,
    /// Sent-but-unacknowledged chunks, oldest first. Populated only under
    /// [`StreamConfig::retain_unacked`]; each incoming credit retires the
    /// oldest entry.
    unacked: VecDeque<ChunkMsg>,
    finished: bool,
    eos_sent: bool,
    stats: StreamSendStats,
    _elem: PhantomData<fn(&T)>,
}

impl<T: Serialize> StreamSender<T> {
    /// A stream from this rank to staging rank `peer`.
    ///
    /// # Panics
    /// Panics on an invalid [`StreamConfig`] (zero window, batch larger
    /// than window).
    pub fn new(peer: usize, cfg: StreamConfig) -> Self {
        cfg.validate();
        StreamSender {
            peer,
            credits: cfg.window,
            cfg,
            next_step: 0,
            batch: Vec::new(),
            batch_bytes: 0,
            unacked: VecDeque::new(),
            finished: false,
            eos_sent: false,
            stats: StreamSendStats::default(),
            _elem: PhantomData,
        }
    }

    /// The stream's counters so far.
    pub fn stats(&self) -> &StreamSendStats {
        &self.stats
    }

    /// Credits currently held (diagnostic).
    pub fn credits(&self) -> usize {
        self.credits
    }

    /// The receiver rank this stream currently points at.
    pub fn peer(&self) -> usize {
        self.peer
    }

    /// Sent-but-unacknowledged chunk count (0 unless
    /// [`StreamConfig::retain_unacked`] is on).
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// Absorb `granted` incoming credits, retiring the oldest
    /// unacknowledged chunks under `retain_unacked`.
    fn grant(&mut self, granted: usize) {
        self.credits += granted;
        for _ in 0..granted.min(self.unacked.len()) {
            self.unacked.pop_front();
        }
    }

    /// Stream one time-step partition (`offset` = its first global element
    /// index). Serializes immediately — the caller's buffer can be reused
    /// as soon as this returns — and blocks only when the credit window is
    /// exhausted.
    pub fn feed(&mut self, comm: &mut Communicator, offset: usize, step: &[T]) -> CommResult<()> {
        assert!(!self.finished, "feed after finish");
        let started = Instant::now();
        let payload = smart_wire::to_bytes(step)?;
        self.batch_bytes += payload.len();
        self.batch.push(ChunkMsg { step: self.next_step, offset: offset as u64, payload });
        self.next_step += 1;
        let result = if self.batch.len() >= self.cfg.batch_steps
            || self.batch_bytes >= self.cfg.max_batch_bytes
        {
            self.flush(comm, false)
        } else {
            Ok(())
        };
        self.stats.send_busy += started.elapsed();
        result
    }

    /// Harvest already-arrived credits without blocking, then block until
    /// at least `need` are held.
    fn acquire_credits(&mut self, comm: &mut Communicator, need: usize) -> CommResult<()> {
        loop {
            match comm.try_recv::<u32>(self.peer, CREDIT_TAG) {
                Ok(Some(granted)) => self.grant(granted as usize),
                Ok(None) => break,
                // Credits granted before the receiver died are still good
                // (they acknowledged durable chunks); its death surfaces
                // below, or at the send, only once progress requires it.
                Err(CommError::PeerGone { .. }) => break,
                Err(e) => return Err(e),
            }
        }
        while self.credits < need {
            let waited = Instant::now();
            let granted: u32 = comm.recv(self.peer, CREDIT_TAG)?;
            self.stats.credit_wait += waited.elapsed();
            self.grant(granted as usize);
        }
        Ok(())
    }

    fn flush(&mut self, comm: &mut Communicator, eos: bool) -> CommResult<()> {
        if self.batch.is_empty() && !eos {
            return Ok(());
        }
        loop {
            // Normally the whole batch fits the window (batch_steps ≤ window,
            // enforced at construction) and this loop runs once. After a
            // failover the replayed backlog can exceed the fresh window; it
            // goes out in window-sized sub-batches, later ones departing as
            // the replacement receiver returns credits.
            let take = self.batch.len().min(self.cfg.window);
            self.acquire_credits(comm, take)?;
            self.credits -= take;
            let rest = self.batch.split_off(take);
            let last = rest.is_empty();
            let msg =
                BatchMsg { chunks: std::mem::replace(&mut self.batch, rest), eos: eos && last };
            self.batch_bytes = self.batch.iter().map(|c| c.payload.len()).sum();
            let bytes = smart_wire::to_bytes(&msg)?;
            self.stats.bytes += bytes.len() as u64;
            self.stats.steps += msg.chunks.len() as u64;
            self.stats.batches += 1;
            let sent = comm.send_bytes(self.peer, DATA_TAG, bytes);
            if self.cfg.retain_unacked {
                // Even when the send itself failed, keep the chunks: the
                // failover path replays them to the replacement receiver.
                self.unacked.extend(msg.chunks);
            }
            sent?;
            if last {
                self.eos_sent = eos;
                return Ok(());
            }
        }
    }

    /// Flush any coalesced tail and mark end-of-stream. Consumes the
    /// sender; returns the final counters.
    pub fn finish(mut self, comm: &mut Communicator) -> CommResult<StreamSendStats> {
        let started = Instant::now();
        self.flush(comm, true)?;
        self.finished = true;
        self.stats.send_busy += started.elapsed();
        Ok(self.stats)
    }

    /// Like [`finish`](Self::finish) but borrows the sender and additionally
    /// blocks until *every* sent chunk has been acknowledged — the
    /// fault-tolerant termination: only acknowledged chunks are durably
    /// combined, so a producer must not exit while any are outstanding.
    /// On [`CommError::PeerGone`] the caller can
    /// [`failover`](Self::failover) and call this again; the unacknowledged
    /// tail (and end-of-stream marker) is replayed to the new receiver.
    ///
    /// Meaningful only with [`StreamConfig::retain_unacked`] (without it the
    /// unacked buffer is always empty and this degenerates to a flush).
    pub fn finish_wait_acked(&mut self, comm: &mut Communicator) -> CommResult<()> {
        let started = Instant::now();
        let result = (|| {
            if !self.eos_sent {
                self.flush(comm, true)?;
            }
            self.finished = true;
            while !self.unacked.is_empty() {
                let waited = Instant::now();
                let granted: u32 = comm.recv(self.peer, CREDIT_TAG)?;
                self.stats.credit_wait += waited.elapsed();
                self.grant(granted as usize);
            }
            Ok(())
        })();
        self.stats.send_busy += started.elapsed();
        result
    }

    /// Re-point the stream at `new_peer` after the current receiver died:
    /// reset the credit window to full, queue every unacknowledged chunk for
    /// retransmission (oldest first, ahead of any coalesced-but-unsent
    /// tail), and clear the end-of-stream marker so it is re-flushed. The
    /// replacement receiver deduplicates replayed chunks by their step
    /// number.
    ///
    /// Requires [`StreamConfig::retain_unacked`]; chunks sent without it are
    /// simply gone when the receiver dies.
    pub fn failover(&mut self, new_peer: usize) {
        assert!(
            self.cfg.retain_unacked,
            "failover requires StreamConfig::retain_unacked (nothing buffered to replay)"
        );
        self.peer = new_peer;
        self.credits = self.cfg.window;
        self.stats.reroutes += 1;
        self.stats.replayed += self.unacked.len() as u64;
        let mut replay: Vec<ChunkMsg> = self.unacked.drain(..).collect();
        replay.append(&mut self.batch);
        self.batch_bytes = replay.iter().map(|c| c.payload.len()).sum();
        self.batch = replay;
        self.eos_sent = false;
        if self.finished {
            // finish_wait_acked will re-flush the replayed tail + EOS.
            self.finished = false;
        }
    }
}

/// Stager-side stream counters.
#[derive(Debug, Clone, Default)]
pub struct StreamRecvStats {
    /// Time blocked waiting for data from this producer.
    pub recv_busy: Duration,
    /// Serialized bytes received (batch framing included).
    pub bytes: u64,
    /// Time-step chunks delivered.
    pub steps: u64,
    /// High-water mark of received-but-unconsumed chunk payload bytes —
    /// the staging-side buffer the credit window bounds.
    pub buffered_bytes_peak: u64,
}

/// The stager (analytics-side) end of a stream from one producer.
pub struct StreamReceiver<T> {
    peer: usize,
    queue: VecDeque<ChunkMsg>,
    buffered_bytes: u64,
    eos: bool,
    stats: StreamRecvStats,
    _elem: PhantomData<fn() -> T>,
}

impl<T: DeserializeOwned> StreamReceiver<T> {
    /// A receiver for the stream arriving from producer rank `peer`.
    pub fn new(peer: usize) -> Self {
        StreamReceiver {
            peer,
            queue: VecDeque::new(),
            buffered_bytes: 0,
            eos: false,
            stats: StreamRecvStats::default(),
            _elem: PhantomData,
        }
    }

    /// The stream's counters so far.
    pub fn stats(&self) -> &StreamRecvStats {
        &self.stats
    }

    /// `true` once end-of-stream has been received *and* drained.
    pub fn is_finished(&self) -> bool {
        self.eos && self.queue.is_empty()
    }

    /// Ingest one wire batch into the reorder queue.
    fn ingest(&mut self, bytes: Vec<u8>) -> CommResult<()> {
        self.stats.bytes += bytes.len() as u64;
        let msg: BatchMsg = smart_wire::from_bytes(&bytes)?;
        self.eos |= msg.eos;
        for chunk in msg.chunks {
            self.buffered_bytes += chunk.payload.len() as u64;
            self.queue.push_back(chunk);
        }
        self.stats.buffered_bytes_peak = self.stats.buffered_bytes_peak.max(self.buffered_bytes);
        Ok(())
    }

    /// Receive the next time-step chunk in order: `(step, offset, data)`.
    /// Returns `Ok(None)` at end-of-stream. Consuming a chunk returns one
    /// credit to the producer, opening its window.
    pub fn recv(&mut self, comm: &mut Communicator) -> CommResult<Option<(u64, usize, Vec<T>)>> {
        while self.queue.is_empty() && !self.eos {
            let waited = Instant::now();
            let bytes = comm.recv_bytes(self.peer, DATA_TAG)?;
            self.stats.recv_busy += waited.elapsed();
            self.ingest(bytes)?;
        }
        // Drain whatever else has already arrived, so
        // `buffered_bytes_peak` observes the true staging-side lookahead
        // the credit window admitted (not just one batch at a time).
        while !self.eos {
            match comm.try_recv_bytes(self.peer, DATA_TAG) {
                Ok(Some(bytes)) => self.ingest(bytes)?,
                Ok(None) => break,
                // A death notice queued behind already-delivered data must
                // not discard that data: serve the queue first, and let the
                // death surface on a later receive once the queue is empty.
                Err(CommError::PeerGone { .. }) => break,
                Err(e) => return Err(e),
            }
        }
        let Some(chunk) = self.queue.pop_front() else {
            return Ok(None);
        };
        self.buffered_bytes -= chunk.payload.len() as u64;
        let data: Vec<T> = smart_wire::from_bytes(&chunk.payload)?;
        self.stats.steps += 1;
        // Return the credit. Best-effort: after end-of-stream the producer
        // may already have exited, and a vanished producer needs no flow
        // control — its death would surface on the next *data* receive.
        match comm.send(self.peer, CREDIT_TAG, &1u32) {
            Ok(()) | Err(CommError::PeerGone { .. }) => {}
            Err(e) => return Err(e),
        }
        Ok(Some((chunk.step, chunk.offset as usize, data)))
    }

    /// The producer rank this receiver is paired with.
    pub fn peer(&self) -> usize {
        self.peer
    }

    /// Like [`recv`](Self::recv) but *without* returning the credit: the
    /// consumer acknowledges explicitly with [`ack`](Self::ack) once the
    /// chunk's contribution is durable (e.g. globally combined). Paired with
    /// [`StreamConfig::retain_unacked`] this turns the credit window into a
    /// commit protocol — an unacknowledged chunk survives in the producer's
    /// replay buffer, so a receiver death between consume and commit loses
    /// nothing.
    pub fn recv_deferred(
        &mut self,
        comm: &mut Communicator,
    ) -> CommResult<Option<(u64, usize, Vec<T>)>> {
        while self.queue.is_empty() && !self.eos {
            let waited = Instant::now();
            let bytes = comm.recv_bytes(self.peer, DATA_TAG)?;
            self.stats.recv_busy += waited.elapsed();
            self.ingest(bytes)?;
        }
        while !self.eos {
            match comm.try_recv_bytes(self.peer, DATA_TAG) {
                Ok(Some(bytes)) => self.ingest(bytes)?,
                Ok(None) => break,
                // See `recv`: data ahead of a buffered death notice is
                // delivered before the death is surfaced.
                Err(CommError::PeerGone { .. }) => break,
                Err(e) => return Err(e),
            }
        }
        let Some(chunk) = self.queue.pop_front() else {
            return Ok(None);
        };
        self.buffered_bytes -= chunk.payload.len() as u64;
        let data: Vec<T> = smart_wire::from_bytes(&chunk.payload)?;
        self.stats.steps += 1;
        Ok(Some((chunk.step, chunk.offset as usize, data)))
    }

    /// Acknowledge `n` consumed chunks: grants `n` credits, which under
    /// [`StreamConfig::retain_unacked`] also retires the oldest `n` entries
    /// of the producer's replay buffer. Best-effort — a producer that
    /// already exited cleanly needs no acknowledgement.
    pub fn ack(&mut self, comm: &mut Communicator, n: usize) -> CommResult<()> {
        if n == 0 {
            return Ok(());
        }
        match comm.send(self.peer, CREDIT_TAG, &(n as u32)) {
            Ok(()) | Err(CommError::PeerGone { .. }) => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_cluster, CommError};

    /// Producer on rank 0 streams `steps` f64 partitions to a stager on
    /// rank 1 with the given config; the stager consumes them all.
    fn roundtrip(cfg: StreamConfig, steps: usize) -> (StreamSendStats, StreamRecvStats, Vec<f64>) {
        let results = run_cluster(2, move |mut comm| {
            if comm.rank() == 0 {
                let mut tx = StreamSender::<f64>::new(1, cfg.clone());
                for t in 0..steps {
                    let data: Vec<f64> = (0..16).map(|i| (t * 16 + i) as f64).collect();
                    tx.feed(&mut comm, t * 16, &data).unwrap();
                }
                let stats = tx.finish(&mut comm).unwrap();
                (Some(stats), None, Vec::new())
            } else {
                let mut rx = StreamReceiver::<f64>::new(0);
                let mut sums = Vec::new();
                let mut expect_step = 0u64;
                while let Some((step, offset, data)) = rx.recv(&mut comm).unwrap() {
                    assert_eq!(step, expect_step, "steps arrive in order");
                    assert_eq!(offset as u64, step * 16);
                    sums.push(data.iter().sum::<f64>());
                    expect_step += 1;
                }
                assert!(rx.is_finished());
                (None, Some(rx.stats().clone()), sums)
            }
        });
        let mut it = results.into_iter();
        let (send, _, _) = it.next().unwrap();
        let (_, recv, sums) = it.next().unwrap();
        (send.unwrap(), recv.unwrap(), sums)
    }

    #[test]
    fn stream_delivers_all_steps_in_order() {
        let (send, recv, sums) = roundtrip(StreamConfig::with_window(3), 20);
        assert_eq!(send.steps, 20);
        assert_eq!(recv.steps, 20);
        assert_eq!(send.bytes, recv.bytes);
        assert_eq!(sums.len(), 20);
        for (t, sum) in sums.iter().enumerate() {
            let expected: f64 = (0..16).map(|i| (t * 16 + i) as f64).sum();
            assert_eq!(*sum, expected, "step {t}");
        }
    }

    #[test]
    fn batching_coalesces_messages() {
        let one_per_msg = roundtrip(StreamConfig::with_window(8), 24).0;
        let coalesced = roundtrip(StreamConfig::with_window(8).with_batch(4, 1 << 20), 24).0;
        assert_eq!(one_per_msg.batches, 25, "24 data messages + EOS");
        assert_eq!(coalesced.batches, 7, "6 batches of 4 + EOS");
        assert_eq!(coalesced.steps, 24);
        assert!(coalesced.bytes < one_per_msg.bytes, "framing amortized across the batch");
    }

    #[test]
    fn byte_cap_flushes_batches_early() {
        // Each step's payload is 16 f64 = 128 bytes (+ framing); a 200-byte
        // cap forces a flush on every second step even with batch_steps=8.
        let stats = roundtrip(StreamConfig::with_window(8).with_batch(8, 200), 8).0;
        assert_eq!(stats.steps, 8);
        assert!(stats.batches >= 4, "byte cap must split the batches: {}", stats.batches);
    }

    #[test]
    fn credit_window_bounds_stager_buffered_bytes() {
        // A fast producer against a slow stager: the credit window — not
        // the stager's consumption rate — must bound how many bytes sit
        // buffered on the staging side.
        let step_elems = 64usize;
        let payload_bytes = smart_wire::encoded_len(&vec![0.0f64; step_elems]).unwrap();
        let mut peaks = Vec::new();
        for window in [1usize, 2, 8] {
            let results = run_cluster(2, move |mut comm| {
                if comm.rank() == 0 {
                    let mut tx = StreamSender::<f64>::new(1, StreamConfig::with_window(window));
                    for t in 0..24 {
                        let data = vec![t as f64; step_elems];
                        tx.feed(&mut comm, 0, &data).unwrap();
                    }
                    tx.finish(&mut comm).unwrap();
                    0
                } else {
                    let mut rx = StreamReceiver::<f64>::new(0);
                    while let Some(_chunk) = rx.recv(&mut comm).unwrap() {
                        // Slow consumer: let the producer run ahead as far
                        // as its credits allow.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    rx.stats().buffered_bytes_peak
                }
            });
            let peak = results[1];
            assert!(peak > 0, "window={window}: stager must have buffered something");
            assert!(
                peak <= (window as u64) * payload_bytes,
                "window={window}: buffered peak {peak} exceeds window bound {}",
                (window as u64) * payload_bytes
            );
            peaks.push(peak);
        }
        assert!(peaks[0] < peaks[2], "a wider window must admit more lookahead: {peaks:?}");
    }

    #[test]
    fn dead_stager_surfaces_as_peer_gone_to_producer() {
        let results = run_cluster(2, |mut comm| {
            if comm.rank() == 0 {
                let mut tx = StreamSender::<u64>::new(1, StreamConfig::with_window(2));
                let mut outcome = Ok(());
                for t in 0..100u64 {
                    if let Err(e) = tx.feed(&mut comm, 0, &[t; 32]) {
                        outcome = Err(e);
                        break;
                    }
                }
                outcome
            } else {
                // Consume one chunk, then die mid-stream.
                let mut rx = StreamReceiver::<u64>::new(0);
                rx.recv(&mut comm).unwrap();
                Ok(())
            }
        });
        assert_eq!(results[0], Err(CommError::PeerGone { peer: 1 }));
        assert!(results[1].is_ok());
    }

    #[test]
    fn dead_producer_surfaces_as_peer_gone_to_stager() {
        let results = run_cluster(2, |mut comm| {
            if comm.rank() == 0 {
                // Stream two steps, then vanish without finish().
                let mut tx = StreamSender::<u64>::new(1, StreamConfig::with_window(4));
                tx.feed(&mut comm, 0, &[1, 2, 3]).unwrap();
                tx.feed(&mut comm, 0, &[4, 5, 6]).unwrap();
                Ok(())
            } else {
                let mut rx = StreamReceiver::<u64>::new(0);
                loop {
                    match rx.recv(&mut comm) {
                        Ok(Some(_)) => continue,
                        Ok(None) => break Ok(()),
                        Err(e) => break Err(e),
                    }
                }
            }
        });
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(CommError::PeerGone { peer: 0 }));
    }

    #[test]
    fn empty_stream_delivers_clean_eos() {
        let results = run_cluster(2, |mut comm| {
            if comm.rank() == 0 {
                let tx = StreamSender::<f64>::new(1, StreamConfig::default());
                tx.finish(&mut comm).unwrap().steps
            } else {
                let mut rx = StreamReceiver::<f64>::new(0);
                assert!(rx.recv(&mut comm).unwrap().is_none());
                assert!(rx.is_finished());
                0
            }
        });
        assert_eq!(results[0], 0);
    }

    #[test]
    #[should_panic(expected = "batch_steps")]
    fn batch_larger_than_window_is_rejected() {
        let _ = StreamSender::<f64>::new(1, StreamConfig::with_window(2).with_batch(4, 1 << 20));
    }

    #[test]
    fn deferred_acks_retire_the_replay_buffer() {
        let results = run_cluster(2, |mut comm| {
            if comm.rank() == 0 {
                let cfg = StreamConfig::with_window(2).with_retain_unacked(true);
                let mut tx = StreamSender::<u64>::new(1, cfg);
                for t in 0..4u64 {
                    tx.feed(&mut comm, t as usize, &[t; 4]).unwrap();
                }
                tx.finish_wait_acked(&mut comm).unwrap();
                assert_eq!(tx.unacked_len(), 0, "every chunk acknowledged at exit");
                tx.stats().steps
            } else {
                let mut rx = StreamReceiver::<u64>::new(0);
                let mut seen = 0;
                while let Some((step, _, data)) = rx.recv_deferred(&mut comm).unwrap() {
                    assert_eq!(data, vec![step; 4]);
                    rx.ack(&mut comm, 1).unwrap();
                    seen += 1;
                }
                seen
            }
        });
        assert_eq!(results, vec![4, 4]);
    }

    #[test]
    fn failover_replays_unacked_chunks_to_replacement_receiver() {
        // Producer rank 0 streams to stager rank 1, which consumes two
        // chunks, commits (acks) only the first, and dies. The producer
        // fails over to rank 2 and must replay exactly the unacknowledged
        // suffix: step 0 (acked ⇒ durable) is never resent, steps 1..6
        // (consumed-but-unacked and never-sent alike) all arrive.
        let steps = 6u64;
        let results = run_cluster(3, move |mut comm| {
            match comm.rank() {
                0 => {
                    let cfg = StreamConfig::with_window(2).with_retain_unacked(true);
                    let mut tx = StreamSender::<u64>::new(1, cfg);
                    for t in 0..steps {
                        if let Err(CommError::PeerGone { .. }) =
                            tx.feed(&mut comm, t as usize, &[t; 4])
                        {
                            tx.failover(2);
                        }
                    }
                    while let Err(CommError::PeerGone { .. }) = tx.finish_wait_acked(&mut comm) {
                        tx.failover(2);
                    }
                    assert_eq!(tx.unacked_len(), 0);
                    assert!(tx.stats().reroutes >= 1, "the dying stager must have been noticed");
                    Vec::new()
                }
                1 => {
                    let mut rx = StreamReceiver::<u64>::new(0);
                    rx.recv_deferred(&mut comm).unwrap().unwrap();
                    rx.recv_deferred(&mut comm).unwrap().unwrap();
                    rx.ack(&mut comm, 1).unwrap(); // commit only the first chunk
                    Vec::new() // die: communicator drops here
                }
                _ => {
                    let mut rx = StreamReceiver::<u64>::new(0);
                    let mut got = Vec::new();
                    while let Some((step, offset, data)) = rx.recv_deferred(&mut comm).unwrap() {
                        assert_eq!(data, vec![step; 4]);
                        assert_eq!(offset as u64, step);
                        got.push(step);
                        rx.ack(&mut comm, 1).unwrap();
                    }
                    got
                }
            }
        });
        assert_eq!(results[2], (1..steps).collect::<Vec<_>>());
    }

    #[test]
    fn many_producers_one_stager_interleave_cleanly() {
        let producers = 4usize;
        let steps = 6usize;
        let results = run_cluster(producers + 1, move |mut comm| {
            if comm.rank() < producers {
                let rank = comm.rank();
                let mut tx = StreamSender::<u64>::new(producers, StreamConfig::with_window(2));
                for t in 0..steps {
                    let v = vec![(rank * 100 + t) as u64; 8];
                    tx.feed(&mut comm, rank * 8, &v).unwrap();
                }
                tx.finish(&mut comm).unwrap();
                0u64
            } else {
                let mut rxs: Vec<StreamReceiver<u64>> =
                    (0..producers).map(StreamReceiver::new).collect();
                let mut total = 0u64;
                for t in 0..steps {
                    for (p, rx) in rxs.iter_mut().enumerate() {
                        let (step, offset, data) = rx.recv(&mut comm).unwrap().unwrap();
                        assert_eq!(step as usize, t);
                        assert_eq!(offset, p * 8);
                        total += data.iter().sum::<u64>();
                    }
                }
                for rx in &mut rxs {
                    assert!(rx.recv(&mut comm).unwrap().is_none());
                }
                total
            }
        });
        let expected: u64 =
            (0..producers).flat_map(|p| (0..steps).map(move |t| 8 * (p * 100 + t) as u64)).sum();
        assert_eq!(results[producers], expected);
    }
}
