//! Communicator error type.

use std::fmt;

/// Result alias for communicator operations.
pub type CommResult<T> = std::result::Result<T, CommError>;

/// Errors raised by point-to-point and collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// Destination or source rank out of `0..size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// A rank tried to message itself through the mailbox.
    SelfMessage(usize),
    /// The peer's mailbox is gone — its thread exited or panicked.
    PeerGone {
        /// The unreachable peer.
        peer: usize,
    },
    /// Payload (de)serialization failed.
    Codec(smart_wire::Error),
    /// `scatter` was given a number of pieces not equal to the size.
    ScatterArity {
        /// Pieces provided.
        provided: usize,
        /// Ranks expecting a piece.
        expected: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            CommError::SelfMessage(r) => write!(f, "rank {r} attempted to send to itself"),
            CommError::PeerGone { peer } => write!(f, "peer rank {peer} is gone"),
            CommError::Codec(e) => write!(f, "payload codec error: {e}"),
            CommError::ScatterArity { provided, expected } => {
                write!(f, "scatter got {provided} pieces for {expected} ranks")
            }
        }
    }
}

impl std::error::Error for CommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<smart_wire::Error> for CommError {
    fn from(e: smart_wire::Error) -> Self {
        CommError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ranks() {
        let e = CommError::RankOutOfRange { rank: 9, size: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        assert!(CommError::PeerGone { peer: 3 }.to_string().contains('3'));
    }

    #[test]
    fn codec_errors_convert() {
        let e: CommError = smart_wire::Error::InvalidUtf8.into();
        assert!(matches!(e, CommError::Codec(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
