//! Ranks, mailboxes, and point-to-point messaging.

use crate::cost::CommConfig;
use crate::error::{CommError, CommResult};
use crate::transport::{self, Frame, Polled, Transport, DEATH_TAG};
use serde::de::DeserializeOwned;
use serde::Serialize;
use smart_sync::{Arc, Mutex};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Message tag. User code should use tags in the `USER` range of the
/// [`tags`](crate::tags) registry; the runtime's namespaces sit above it.
pub use crate::tags::Tag;

/// First tag value reserved for internal collective traffic (see
/// [`tags`](crate::tags) for the full namespace partition).
pub use crate::tags::COLLECTIVE_BASE;

/// The receiving side of one rank's frame queue, with an out-of-order
/// buffer for messages that arrived before they were asked for.
///
/// The buffer is keyed by `(src, tag)`, so matching a receive against a
/// deep out-of-order backlog is a map lookup, not a scan over every pending
/// message (which degraded quadratically when a stream sender ran far ahead
/// of a receiver busy with collective traffic).
#[derive(Debug, Default)]
pub struct Mailbox {
    /// Buffered payloads in arrival order per `(src, tag)` pair.
    queues: HashMap<(usize, Tag), VecDeque<Vec<u8>>>,
    /// Ranks whose death notice this mailbox has observed. FIFO delivery
    /// per sender means any real message from a rank precedes its death
    /// notice, so data already buffered is still served before
    /// [`CommError::PeerGone`] is reported.
    dead: BTreeSet<usize>,
    /// Buffered message count across all queues (diagnostic).
    buffered: usize,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox::default()
    }

    /// Stash a data frame in its `(src, tag)` queue.
    fn buffer(&mut self, frame: Frame) {
        self.queues.entry((frame.src, frame.tag)).or_default().push_back(frame.payload);
        self.buffered += 1;
    }

    /// Pop the oldest buffered payload for `(src, tag)`, if any.
    fn pop(&mut self, src: usize, tag: Tag) -> Option<Vec<u8>> {
        let queue = self.queues.get_mut(&(src, tag))?;
        let payload = queue.pop_front()?;
        if queue.is_empty() {
            self.queues.remove(&(src, tag));
        }
        self.buffered -= 1;
        Some(payload)
    }

    /// Absorb one frame from the transport: data is buffered, death notices
    /// are recorded. Returns the frame's source rank and whether it was a
    /// death notice.
    fn absorb(&mut self, frame: Frame) -> (usize, bool) {
        let src = frame.src;
        if frame.tag == DEATH_TAG {
            self.dead.insert(src);
            (src, true)
        } else {
            self.buffer(frame);
            (src, false)
        }
    }

    /// Wait for a message from `src` with `tag`, buffering others.
    fn recv_match(
        &mut self,
        transport: &mut dyn Transport,
        src: usize,
        tag: Tag,
    ) -> CommResult<Vec<u8>> {
        if let Some(payload) = self.pop(src, tag) {
            return Ok(payload);
        }
        if self.dead.contains(&src) {
            return Err(CommError::PeerGone { peer: src });
        }
        loop {
            let frame = match transport.recv() {
                Some(frame) => frame,
                None => return Err(CommError::PeerGone { peer: src }),
            };
            if frame.src == src && frame.tag == tag {
                return Ok(frame.payload);
            }
            let (frame_src, died) = self.absorb(frame);
            if died && frame_src == src {
                return Err(CommError::PeerGone { peer: src });
            }
        }
    }

    /// Non-blocking variant of [`recv_match`](Self::recv_match): drain
    /// whatever the transport currently holds, then answer from the buffer.
    /// Returns `Ok(None)` when no matching message has arrived yet.
    fn try_recv_match(
        &mut self,
        transport: &mut dyn Transport,
        src: usize,
        tag: Tag,
    ) -> CommResult<Option<Vec<u8>>> {
        loop {
            match transport.try_recv() {
                Polled::Frame(frame) => {
                    self.absorb(frame);
                }
                Polled::Empty => break,
                Polled::Closed => return Err(CommError::PeerGone { peer: src }),
            }
        }
        if let Some(payload) = self.pop(src, tag) {
            return Ok(Some(payload));
        }
        if self.dead.contains(&src) {
            return Err(CommError::PeerGone { peer: src });
        }
        Ok(None)
    }

    /// [`recv_match`](Self::recv_match) with a deadline. Returns `Ok(None)`
    /// when `timeout` elapses without a matching message; a death notice
    /// from `src` observed while waiting still surfaces as
    /// [`CommError::PeerGone`] immediately, never a timeout.
    fn recv_match_timeout(
        &mut self,
        transport: &mut dyn Transport,
        src: usize,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> CommResult<Option<Vec<u8>>> {
        if let Some(found) = self.try_recv_match(transport, src, tag)? {
            return Ok(Some(found));
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let frame = match transport.recv_timeout(remaining) {
                Polled::Frame(frame) => frame,
                Polled::Empty => return Ok(None),
                Polled::Closed => return Err(CommError::PeerGone { peer: src }),
            };
            if frame.src == src && frame.tag == tag {
                return Ok(Some(frame.payload));
            }
            let (frame_src, died) = self.absorb(frame);
            if died && frame_src == src {
                return Err(CommError::PeerGone { peer: src });
            }
        }
    }

    /// Number of buffered out-of-order messages (diagnostic).
    pub fn pending_len(&self) -> usize {
        self.buffered
    }
}

struct Shared {
    config: Arc<CommConfig>,
    /// Cluster-wide lock for [`CommConfig::serialized_sends`].
    send_lock: Mutex<()>,
}

/// One rank's handle to the cluster.
///
/// A `Communicator` is owned by exactly one thread (it is `Send` but not
/// `Sync` in spirit: `recv` needs `&mut self`). Collectives must be invoked
/// by all ranks in the same order — the standard SPMD contract.
pub struct Communicator {
    rank: usize,
    size: usize,
    shared: Arc<Shared>,
    transport: Box<dyn Transport>,
    mailbox: Mailbox,
    /// Per-rank counter of collective operations, used to give each
    /// collective a unique tag so back-to-back collectives never cross talk.
    pub(crate) collective_seq: u64,
    /// Ranks this rank has observed (or been told) are dead. Purely local
    /// bookkeeping for fault-tolerant protocols: the fabric itself still
    /// accepts sends to them (they surface as `PeerGone`).
    dead: BTreeSet<usize>,
    /// Diagnostic counters.
    pub(crate) sent_messages: u64,
    pub(crate) sent_bytes: u64,
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

impl Communicator {
    /// Create the `n` communicators of a fresh cluster. The fabric is
    /// chosen by [`CommConfig::transport`], falling back to the
    /// `SMART_TRANSPORT` environment variable.
    pub(crate) fn universe(n: usize, config: Arc<CommConfig>) -> Vec<Communicator> {
        let kind = config.transport.unwrap_or_else(transport::TransportKind::from_env);
        let shared = Arc::new(Shared { config, send_lock: Mutex::new(()) });
        transport::build(kind, n)
            .into_iter()
            .enumerate()
            .map(|(rank, transport)| Communicator {
                rank,
                size: n,
                shared: Arc::clone(&shared),
                transport,
                mailbox: Mailbox::new(),
                collective_seq: 0,
                dead: BTreeSet::new(),
                sent_messages: 0,
                sent_bytes: 0,
            })
            .collect()
    }

    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Total messages this rank has sent (diagnostic).
    pub fn sent_messages(&self) -> u64 {
        self.sent_messages
    }

    /// Total payload bytes this rank has sent (diagnostic).
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    fn check_peer(&self, peer: usize) -> CommResult<()> {
        if peer >= self.size {
            return Err(CommError::RankOutOfRange { rank: peer, size: self.size });
        }
        if peer == self.rank {
            return Err(CommError::SelfMessage(self.rank));
        }
        Ok(())
    }

    /// Send `value` to `dest` with `tag`. Blocking only in the sense that the
    /// cost model (if any) is charged here; delivery itself is queued.
    pub fn send<T: Serialize + ?Sized>(
        &mut self,
        dest: usize,
        tag: Tag,
        value: &T,
    ) -> CommResult<()> {
        let payload = smart_wire::to_bytes(value)?;
        self.send_bytes(dest, tag, payload)
    }

    /// Send a pre-encoded payload.
    pub fn send_bytes(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> CommResult<()> {
        self.check_peer(dest)?;
        let nbytes = payload.len();
        if let Some(cost) = self.shared.config.cost {
            if self.shared.config.serialized_sends {
                let _guard = self.shared.send_lock.lock();
                cost.charge(nbytes);
            } else {
                cost.charge(nbytes);
            }
        } else if self.shared.config.serialized_sends {
            // Even without a cost model, take the lock so contention exists.
            let _guard = self.shared.send_lock.lock();
        }
        self.sent_messages += 1;
        self.sent_bytes += nbytes as u64;
        self.transport.send(dest, tag, payload)
    }

    /// Receive a value of type `T` from `src` with `tag`, blocking until it
    /// arrives. Messages from other (src, tag) pairs are buffered.
    pub fn recv<T: DeserializeOwned>(&mut self, src: usize, tag: Tag) -> CommResult<T> {
        let payload = self.recv_bytes(src, tag)?;
        Ok(smart_wire::from_bytes(&payload)?)
    }

    /// Receive the raw payload from `src` with `tag`.
    pub fn recv_bytes(&mut self, src: usize, tag: Tag) -> CommResult<Vec<u8>> {
        self.check_peer(src)?;
        self.mailbox.recv_match(self.transport.as_mut(), src, tag)
    }

    /// Non-blocking receive: `Ok(Some(value))` if a matching message has
    /// already arrived, `Ok(None)` otherwise. A pending death notice from
    /// `src` surfaces as [`CommError::PeerGone`].
    pub fn try_recv<T: DeserializeOwned>(&mut self, src: usize, tag: Tag) -> CommResult<Option<T>> {
        match self.try_recv_bytes(src, tag)? {
            Some(payload) => Ok(Some(smart_wire::from_bytes(&payload)?)),
            None => Ok(None),
        }
    }

    /// Raw-payload variant of [`try_recv`](Self::try_recv).
    pub fn try_recv_bytes(&mut self, src: usize, tag: Tag) -> CommResult<Option<Vec<u8>>> {
        self.check_peer(src)?;
        self.mailbox.try_recv_match(self.transport.as_mut(), src, tag)
    }

    /// Receive with a deadline: `Ok(Some(value))` if a matching message
    /// arrives within `timeout`, `Ok(None)` on expiry. The death of `src`
    /// while waiting surfaces as [`CommError::PeerGone`] immediately — a
    /// dead peer is an error, not a timeout.
    pub fn recv_timeout<T: DeserializeOwned>(
        &mut self,
        src: usize,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> CommResult<Option<T>> {
        match self.recv_bytes_timeout(src, tag, timeout)? {
            Some(payload) => Ok(Some(smart_wire::from_bytes(&payload)?)),
            None => Ok(None),
        }
    }

    /// Raw-payload variant of [`recv_timeout`](Self::recv_timeout).
    pub fn recv_bytes_timeout(
        &mut self,
        src: usize,
        tag: Tag,
        timeout: std::time::Duration,
    ) -> CommResult<Option<Vec<u8>>> {
        self.check_peer(src)?;
        self.mailbox.recv_match_timeout(self.transport.as_mut(), src, tag, timeout)
    }

    /// Buffered out-of-order message count (diagnostic).
    pub fn pending_messages(&self) -> usize {
        self.mailbox.pending_len()
    }

    /// Record that `rank` is known dead. Idempotent; recording self or an
    /// out-of-range rank is ignored. This is local bookkeeping consulted by
    /// fault-aware collectives ([`allgather_alive`](Self::allgather_alive))
    /// and recovery drivers — it does not notify anyone.
    pub fn mark_dead(&mut self, rank: usize) {
        if rank < self.size && rank != self.rank {
            self.dead.insert(rank);
        }
    }

    /// Whether `rank` is believed alive (not yet [`mark_dead`](Self::mark_dead)ed).
    /// The local rank is always alive from its own point of view.
    pub fn is_alive(&self, rank: usize) -> bool {
        rank < self.size && !self.dead.contains(&rank)
    }

    /// Ranks believed alive, ascending, always including this rank.
    pub fn alive_ranks(&self) -> Vec<usize> {
        (0..self.size).filter(|r| self.is_alive(*r)).collect()
    }

    /// Ranks recorded dead, ascending.
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.dead.iter().copied().collect()
    }
}

impl Drop for Communicator {
    fn drop(&mut self) {
        // Wake any peer blocked on this rank (best-effort) and release
        // fabric resources.
        self.transport.notify_death();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Communicator, Communicator) {
        let mut v = Communicator::universe(2, Arc::new(CommConfig::default()));
        let b = v.pop().unwrap();
        let a = v.pop().unwrap();
        (a, b)
    }

    /// A pair pinned to the in-process backend, for tests that rely on
    /// channel-specific timing (immediate delivery of sends and death
    /// notices). Socket backends only promise *eventual* delivery through
    /// their reader threads, so `try_recv` right after a send may
    /// legitimately see nothing yet there.
    fn pair_inproc() -> (Communicator, Communicator) {
        let config = CommConfig {
            transport: Some(crate::transport::TransportKind::InProcess),
            ..CommConfig::default()
        };
        let mut v = Communicator::universe(2, Arc::new(config));
        let b = v.pop().unwrap();
        let a = v.pop().unwrap();
        (a, b)
    }

    #[test]
    fn basic_send_recv() {
        let (mut a, mut b) = pair();
        a.send(1, 3, &vec![1.5f64, 2.5]).unwrap();
        let got: Vec<f64> = b.recv(0, 3).unwrap();
        assert_eq!(got, vec![1.5, 2.5]);
    }

    #[test]
    fn self_send_is_rejected() {
        let (mut a, _b) = pair();
        assert_eq!(a.send(0, 1, &1u8).unwrap_err(), CommError::SelfMessage(0));
    }

    #[test]
    fn bad_rank_is_rejected() {
        let (mut a, _b) = pair();
        assert_eq!(a.send(5, 1, &1u8).unwrap_err(), CommError::RankOutOfRange { rank: 5, size: 2 });
        assert!(matches!(a.recv::<u8>(9, 1), Err(CommError::RankOutOfRange { .. })));
    }

    #[test]
    fn type_mismatch_surfaces_as_codec_error() {
        let (mut a, mut b) = pair();
        a.send(1, 1, &"string".to_string()).unwrap();
        let res: CommResult<u16> = b.recv(0, 1);
        assert!(matches!(res, Err(CommError::Codec(_))));
    }

    #[test]
    fn counters_track_traffic() {
        let (mut a, mut b) = pair();
        a.send(1, 1, &7u64).unwrap();
        a.send(1, 2, &7u64).unwrap();
        assert_eq!(a.sent_messages(), 2);
        assert_eq!(a.sent_bytes(), 16);
        let _: u64 = b.recv(0, 2).unwrap();
        assert_eq!(b.pending_messages(), 1);
        let _: u64 = b.recv(0, 1).unwrap();
        assert_eq!(b.pending_messages(), 0);
    }

    #[test]
    fn recv_from_dead_peer_errors() {
        let (_a, mut b) = pair();
        // `_a` dropped: its death notice arrives, so waiting on it errors
        // instead of hanging.
        drop(_a);
        let res: CommResult<u8> = b.recv(0, 1);
        assert_eq!(res.unwrap_err(), CommError::PeerGone { peer: 0 });
    }

    #[test]
    fn try_recv_returns_none_then_some() {
        let (mut a, mut b) = pair_inproc();
        assert_eq!(b.try_recv::<u32>(0, 9).unwrap(), None);
        a.send(1, 9, &11u32).unwrap();
        // Delivery through an in-process channel is immediate.
        assert_eq!(b.try_recv::<u32>(0, 9).unwrap(), Some(11));
        assert_eq!(b.try_recv::<u32>(0, 9).unwrap(), None);
    }

    #[test]
    fn try_recv_buffers_non_matching_messages() {
        let (mut a, mut b) = pair_inproc();
        a.send(1, 5, &1u8).unwrap();
        assert_eq!(b.try_recv::<u8>(0, 6).unwrap(), None);
        assert_eq!(b.pending_messages(), 1);
        assert_eq!(b.try_recv::<u8>(0, 5).unwrap(), Some(1));
    }

    #[test]
    fn try_recv_surfaces_peer_gone() {
        let (a, mut b) = pair_inproc();
        drop(a);
        assert_eq!(b.try_recv::<u8>(0, 1).unwrap_err(), CommError::PeerGone { peer: 0 });
    }

    #[test]
    fn recv_timeout_expires_with_none() {
        let (_a, mut b) = pair();
        let started = std::time::Instant::now();
        let got: Option<u8> = b.recv_timeout(0, 1, std::time::Duration::from_millis(20)).unwrap();
        assert_eq!(got, None);
        assert!(started.elapsed() >= std::time::Duration::from_millis(20));
    }

    #[test]
    fn recv_timeout_returns_early_when_message_arrives() {
        let (mut a, mut b) = pair();
        a.send(1, 3, &7u64).unwrap();
        let got: Option<u64> = b.recv_timeout(0, 3, std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(got, Some(7));
    }

    #[test]
    fn recv_timeout_surfaces_peer_gone_while_waiting() {
        // The peer dies mid-wait: the receiver must wake with PeerGone well
        // before the (long) timeout, not hang out the full duration.
        let (a, mut b) = pair();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            drop(a);
        });
        let started = std::time::Instant::now();
        let res: CommResult<Option<u8>> = b.recv_timeout(0, 1, std::time::Duration::from_secs(30));
        killer.join().unwrap();
        assert_eq!(res.unwrap_err(), CommError::PeerGone { peer: 0 });
        assert!(started.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn alive_mask_tracks_marked_deaths() {
        let mut v = Communicator::universe(4, Arc::new(CommConfig::default()));
        let mut c = v.remove(1);
        assert_eq!(c.alive_ranks(), vec![0, 1, 2, 3]);
        assert!(c.is_alive(3));
        c.mark_dead(3);
        c.mark_dead(3); // idempotent
        c.mark_dead(1); // self: ignored
        c.mark_dead(99); // out of range: ignored
        assert!(!c.is_alive(3));
        assert!(c.is_alive(1));
        assert_eq!(c.alive_ranks(), vec![0, 1, 2]);
        assert_eq!(c.dead_ranks(), vec![3]);
    }

    #[test]
    fn fifo_order_within_same_src_and_tag() {
        let (mut a, mut b) = pair();
        for i in 0..10u32 {
            a.send(1, 4, &i).unwrap();
        }
        for i in 0..10u32 {
            let got: u32 = b.recv(0, 4).unwrap();
            assert_eq!(got, i);
        }
    }

    #[test]
    fn data_buffered_before_death_is_still_delivered() {
        // FIFO per sender: a message sent before the peer died must be
        // served from the buffer before PeerGone is reported.
        let (mut a, mut b) = pair();
        a.send(1, 7, &42u32).unwrap();
        drop(a);
        assert_eq!(b.recv::<u32>(0, 7).unwrap(), 42);
        assert_eq!(b.recv::<u32>(0, 7).unwrap_err(), CommError::PeerGone { peer: 0 });
    }

    #[test]
    fn deep_out_of_order_buffer_matches_by_index() {
        // Many distinct tags buffered out of order; each recv must find its
        // tag directly rather than scanning (behavioral check — the perf
        // property is the (src, tag)-keyed map in Mailbox).
        let (mut a, mut b) = pair();
        let n = 200u64;
        for t in 0..n {
            a.send(1, t, &t).unwrap();
        }
        for t in (0..n).rev() {
            assert_eq!(b.recv::<u64>(0, t).unwrap(), t);
        }
        assert_eq!(b.pending_messages(), 0);
    }
}
