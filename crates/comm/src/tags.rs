//! The tag-namespace registry: one place that partitions the `u64` tag
//! space every message in the workspace shares.
//!
//! Point-to-point matching is `(src, tag)`-keyed, so two subsystems using
//! the same tag against the same peer silently cross-wire — an ft
//! heartbeat swallowed by a stream receive, a collective frame delivered
//! to user code. The partition below keeps that impossible by
//! construction: each subsystem draws its tags from its own half-open
//! range `[BASE, LIMIT)`, and `cargo xtask lint`'s tag-namespace analysis
//! proves (a) the claims are pairwise disjoint, (b) every tag constant a
//! claimed module defines evaluates into its claim, and (c) unclaimed
//! modules stay inside the `USER` range.
//!
//! The `lint:claim` lines are machine-read: they map a source file (by
//! path suffix) to the namespace it is allowed to mint tags in. A file
//! with no claim may only use `USER` tags.
//
// lint:claim(USER) = -
// lint:claim(FT_PING) = ft/src/detect.rs
// lint:claim(FT_CTL) = ft/src/heal.rs
// lint:claim(STREAM) = comm/src/stream.rs
// lint:claim(COLLECTIVE) = comm/src/communicator.rs
// lint:claim(COLLECTIVE) = comm/src/collectives.rs

/// Message tag. One `u64` namespace shared by every layer; the constants
/// in this module carve it up.
pub type Tag = u64;

/// User point-to-point traffic: `0 ..= 2^32 - 1`. Application code (and
/// any module without a `lint:claim`) must stay in this range.
pub const USER_BASE: Tag = 0;
/// Exclusive upper bound of the user range.
pub const USER_LIMIT: Tag = 1 << 32;

/// Fault-detection heartbeats (`smart-ft`'s ping/pong probes).
pub const FT_PING_BASE: Tag = 1 << 32;
/// Exclusive upper bound of the heartbeat range.
pub const FT_PING_LIMIT: Tag = 1 << 33;

/// Heal-drive control exchanges on the staging communicator
/// (`smart-ft::heal`'s sync/active/commit ops, sequence-stamped).
pub const FT_CTL_BASE: Tag = 1 << 34;
/// Exclusive upper bound of the heal-control range.
pub const FT_CTL_LIMIT: Tag = 1 << 35;

/// Credit-windowed streaming transport (producer↔stager data and credit
/// messages for in-transit analytics).
pub const STREAM_BASE: Tag = 1 << 40;
/// Exclusive upper bound of the streaming range.
pub const STREAM_LIMIT: Tag = 1 << 41;

/// Internal collective traffic. Collectives stamp a per-communicator
/// sequence number above bit 16, so the claim runs to the top of the tag
/// space (exclusive — `u64::MAX` itself is the death notice).
pub const COLLECTIVE_BASE: Tag = 1 << 48;
/// Exclusive upper bound of the collective range.
pub const COLLECTIVE_LIMIT: Tag = u64::MAX;

/// Control tag carried by the "death notice" a rank broadcasts when its
/// communicator is dropped, so peers blocked on it wake up with
/// [`PeerGone`](crate::CommError::PeerGone) instead of hanging forever.
/// A single reserved point outside every range: no subsystem may claim it.
pub const DEATH_TAG: Tag = u64::MAX;

/// The namespace a tag falls in — diagnostics only; matching never
/// consults this.
pub fn namespace_of(tag: Tag) -> &'static str {
    match tag {
        DEATH_TAG => "DEATH",
        t if (FT_PING_BASE..FT_PING_LIMIT).contains(&t) => "FT_PING",
        t if (FT_CTL_BASE..FT_CTL_LIMIT).contains(&t) => "FT_CTL",
        t if (STREAM_BASE..STREAM_LIMIT).contains(&t) => "STREAM",
        t if (COLLECTIVE_BASE..COLLECTIVE_LIMIT).contains(&t) => "COLLECTIVE",
        t if (USER_BASE..USER_LIMIT).contains(&t) => "USER",
        _ => "UNCLAIMED",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_are_pairwise_disjoint() {
        let claims: &[(&str, Tag, Tag)] = &[
            ("USER", USER_BASE, USER_LIMIT),
            ("FT_PING", FT_PING_BASE, FT_PING_LIMIT),
            ("FT_CTL", FT_CTL_BASE, FT_CTL_LIMIT),
            ("STREAM", STREAM_BASE, STREAM_LIMIT),
            ("COLLECTIVE", COLLECTIVE_BASE, COLLECTIVE_LIMIT),
        ];
        for (i, &(a, ab, al)) in claims.iter().enumerate() {
            assert!(ab < al, "{a} is empty or inverted");
            assert!(!(ab..al).contains(&DEATH_TAG), "{a} swallows DEATH_TAG");
            for &(b, bb, bl) in &claims[i + 1..] {
                assert!(al <= bb || bl <= ab, "{a} and {b} overlap");
            }
        }
    }

    #[test]
    fn namespace_of_classifies_known_tags() {
        assert_eq!(namespace_of(7), "USER");
        assert_eq!(namespace_of(FT_PING_BASE | 1), "FT_PING");
        assert_eq!(namespace_of(FT_CTL_BASE | (3 << 8) | 1), "FT_CTL");
        assert_eq!(namespace_of(STREAM_BASE | 2), "STREAM");
        assert_eq!(namespace_of(COLLECTIVE_BASE | (9 << 16) | 4), "COLLECTIVE");
        assert_eq!(namespace_of(DEATH_TAG), "DEATH");
        assert_eq!(namespace_of(1 << 33), "UNCLAIMED");
    }
}
