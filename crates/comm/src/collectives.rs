//! Collective operations, built on point-to-point messaging.
//!
//! Broadcast and reduce use binomial trees (⌈log₂ n⌉ rounds), like MPICH's
//! small-message algorithms; allreduce is reduce-to-root + broadcast, which
//! is exactly the structure of Smart's global combination (merge local
//! combination maps toward the master, then redistribute the global map for
//! the next iteration — Algorithm 1 lines 4 and 11–17).
//!
//! Every collective consumes one value from the per-rank collective sequence
//! and embeds it in the message tag, so consecutive collectives can never
//! consume each other's messages even when ranks run ahead.

use crate::communicator::{Communicator, Tag, COLLECTIVE_BASE};
use crate::error::{CommError, CommResult};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Internal collective op codes folded into the tag.
#[derive(Clone, Copy)]
enum Op {
    Barrier = 1,
    Broadcast = 2,
    Reduce = 3,
    Gather = 4,
    Scatter = 5,
}

impl Communicator {
    /// Tag layout: bit 48 = collective marker, bits 16..48 = per-rank
    /// collective sequence (wrapping), bits 8..16 = round within the
    /// collective, bits 0..8 = op code.
    fn coll_tag(&mut self, op: Op) -> Tag {
        let seq = self.collective_seq & 0xFFFF_FFFF;
        self.collective_seq += 1;
        COLLECTIVE_BASE | (seq << 16) | op as u64
    }

    /// Synchronize all ranks (dissemination barrier, ⌈log₂ n⌉ rounds).
    pub fn barrier(&mut self) -> CommResult<()> {
        let tag = self.coll_tag(Op::Barrier);
        let n = self.size();
        let mut round = 0u64;
        let mut dist = 1usize;
        while dist < n {
            let to = (self.rank() + dist) % n;
            let from = (self.rank() + n - dist) % n;
            self.send(to, tag | round << 8, &())?;
            let () = self.recv(from, tag | round << 8)?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcast `value` from `root` to every rank; returns the value on all
    /// ranks. Non-root ranks pass their own `value`, which is discarded
    /// (mirroring MPI's in-place buffer semantics without the `MaybeUninit`
    /// dance).
    pub fn broadcast<T>(&mut self, root: usize, value: T) -> CommResult<T>
    where
        T: Serialize + DeserializeOwned,
    {
        if root >= self.size() {
            return Err(CommError::RankOutOfRange { rank: root, size: self.size() });
        }
        let tag = self.coll_tag(Op::Broadcast);
        let n = self.size();
        let relative = (self.rank() + n - root) % n;

        let mut current = value;
        // Receive phase: find the bit at which this rank joins the tree.
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                let src = (self.rank() + n - mask) % n;
                current = self.recv(src, tag)?;
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward down the remaining subtree.
        mask >>= 1;
        while mask > 0 {
            if relative + mask < n {
                let dst = (self.rank() + mask) % n;
                self.send(dst, tag, &current)?;
            }
            mask >>= 1;
        }
        Ok(current)
    }

    /// Reduce all ranks' values to `root` with `op` (binomial tree).
    /// Returns `Some(result)` on the root, `None` elsewhere.
    ///
    /// `op(acc, incoming)` must be associative and commutative, like an MPI
    /// reduction operator.
    pub fn reduce<T>(
        &mut self,
        root: usize,
        value: T,
        op: impl Fn(T, T) -> T,
    ) -> CommResult<Option<T>>
    where
        T: Serialize + DeserializeOwned,
    {
        if root >= self.size() {
            return Err(CommError::RankOutOfRange { rank: root, size: self.size() });
        }
        let tag = self.coll_tag(Op::Reduce);
        let n = self.size();
        let relative = (self.rank() + n - root) % n;

        let mut acc = Some(value);
        let mut mask = 1usize;
        while mask < n {
            if relative & mask == 0 {
                let partner_rel = relative | mask;
                if partner_rel < n {
                    let src = (partner_rel + root) % n;
                    let incoming: T = self.recv(src, tag)?;
                    acc = Some(op(acc.take().expect("acc present"), incoming));
                }
            } else {
                let dst = (relative - mask + root) % n;
                let v = acc.take().expect("acc present");
                self.send(dst, tag, &v)?;
                break;
            }
            mask <<= 1;
        }
        Ok(if self.rank() == root { acc } else { None })
    }

    /// Reduce to rank 0 then broadcast the result back: every rank gets the
    /// global reduction.
    pub fn allreduce<T>(&mut self, value: T, op: impl Fn(T, T) -> T) -> CommResult<T>
    where
        T: Serialize + DeserializeOwned + Default,
    {
        let reduced = self.reduce(0, value, op)?;
        self.broadcast(0, reduced.unwrap_or_default())
    }

    /// Element-wise in-place sum allreduce over a float slice — the pattern
    /// hand-written MPI analytics use (`MPI_Allreduce` over contiguous
    /// arrays, §5.3).
    pub fn allreduce_sum_f64(&mut self, buf: &mut [f64]) -> CommResult<()> {
        let out = self.allreduce(buf.to_vec(), |mut a, b| {
            debug_assert_eq!(a.len(), b.len(), "allreduce_sum_f64 length mismatch across ranks");
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        })?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    /// Gather every rank's value at `root` (linear). Returns `Some(values)`
    /// in rank order at the root, `None` elsewhere.
    pub fn gather<T>(&mut self, root: usize, value: T) -> CommResult<Option<Vec<T>>>
    where
        T: Serialize + DeserializeOwned,
    {
        if root >= self.size() {
            return Err(CommError::RankOutOfRange { rank: root, size: self.size() });
        }
        let tag = self.coll_tag(Op::Gather);
        if self.rank() == root {
            let mut slots: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            slots[root] = Some(value);
            #[allow(clippy::needless_range_loop)] // recv borrows self mutably; no iter_mut possible
            for src in 0..self.size() {
                if src == root {
                    continue;
                }
                let received = self.recv(src, tag)?;
                slots[src] = Some(received);
            }
            Ok(Some(slots.into_iter().map(|s| s.expect("slot filled")).collect()))
        } else {
            self.send(root, tag, &value)?;
            Ok(None)
        }
    }

    /// Gather at rank 0 then broadcast: every rank gets all values in rank
    /// order.
    pub fn allgather<T>(&mut self, value: T) -> CommResult<Vec<T>>
    where
        T: Serialize + DeserializeOwned,
    {
        let gathered = self.gather(0, value)?;
        self.broadcast(0, gathered.unwrap_or_default())
    }

    /// Scatter one piece to each rank from `root`. The root passes
    /// `Some(pieces)` with exactly `size` elements; other ranks pass `None`.
    /// Every rank returns its own piece.
    pub fn scatter<T>(&mut self, root: usize, pieces: Option<Vec<T>>) -> CommResult<T>
    where
        T: Serialize + DeserializeOwned,
    {
        if root >= self.size() {
            return Err(CommError::RankOutOfRange { rank: root, size: self.size() });
        }
        let tag = self.coll_tag(Op::Scatter);
        if self.rank() == root {
            let pieces = pieces.ok_or(CommError::ScatterArity { provided: 0, expected: self.size() })?;
            if pieces.len() != self.size() {
                return Err(CommError::ScatterArity { provided: pieces.len(), expected: self.size() });
            }
            let mut mine = None;
            for (dst, piece) in pieces.into_iter().enumerate() {
                if dst == root {
                    mine = Some(piece);
                } else {
                    self.send(dst, tag, &piece)?;
                }
            }
            Ok(mine.expect("root piece present"))
        } else {
            self.recv(root, tag)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::run_cluster;

    #[test]
    fn barrier_completes_on_all_sizes() {
        for n in [1, 2, 3, 4, 5, 8] {
            run_cluster(n, |mut comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
            });
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for n in [1, 2, 3, 4, 7] {
            for root in 0..n {
                let r = run_cluster(n, |mut comm| {
                    let v = if comm.rank() == root { vec![root as u64, 99] } else { vec![] };
                    comm.broadcast(root, v).unwrap()
                });
                assert!(r.iter().all(|v| *v == vec![root as u64, 99]), "n={n} root={root}");
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for n in [1, 2, 3, 4, 6, 8] {
            for root in [0, n - 1] {
                let r = run_cluster(n, |mut comm| {
                    comm.reduce(root, comm.rank() as u64 + 1, |a, b| a + b).unwrap()
                });
                let expected: u64 = (1..=n as u64).sum();
                for (rank, v) in r.iter().enumerate() {
                    if rank == root {
                        assert_eq!(*v, Some(expected));
                    } else {
                        assert_eq!(*v, None);
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_on_non_power_of_two() {
        for n in [1, 2, 3, 5, 6, 7] {
            let r = run_cluster(n, |mut comm| {
                comm.allreduce(comm.rank() as i64, |a, b| a.max(b)).unwrap()
            });
            assert!(r.iter().all(|&v| v == n as i64 - 1));
        }
    }

    #[test]
    fn allreduce_sum_f64_matches_manual_sum() {
        let n = 5;
        let r = run_cluster(n, |mut comm| {
            let mut buf = vec![comm.rank() as f64, 1.0, -(comm.rank() as f64)];
            comm.allreduce_sum_f64(&mut buf).unwrap();
            buf
        });
        let total: f64 = (0..n).map(|r| r as f64).sum();
        for v in r {
            assert_eq!(v, vec![total, n as f64, -total]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let r = run_cluster(4, |mut comm| comm.gather(2, comm.rank() as u32 * 10).unwrap());
        assert_eq!(r[2], Some(vec![0, 10, 20, 30]));
        assert_eq!(r[0], None);
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let r = run_cluster(3, |mut comm| comm.allgather(format!("r{}", comm.rank())).unwrap());
        for v in r {
            assert_eq!(v, vec!["r0", "r1", "r2"]);
        }
    }

    #[test]
    fn scatter_distributes_pieces() {
        let r = run_cluster(4, |mut comm| {
            let pieces =
                (comm.rank() == 1).then(|| vec![100u64, 101, 102, 103]);
            comm.scatter(1, pieces).unwrap()
        });
        assert_eq!(r, vec![100, 101, 102, 103]);
    }

    #[test]
    fn scatter_arity_mismatch_is_an_error() {
        let r = run_cluster(3, |mut comm| {
            let pieces = (comm.rank() == 0).then(|| vec![1u8, 2]); // one short
            comm.scatter(0, pieces)
        });
        assert!(r[0].is_err());
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_talk() {
        // Interleave different collectives many times; sequence-numbered
        // tags must keep them separated even with rank skew.
        let r = run_cluster(4, |mut comm| {
            let mut acc = 0u64;
            for i in 0..20 {
                let s = comm.allreduce(i + comm.rank() as u64, |a, b| a + b).unwrap();
                let g = comm.allgather(comm.rank() as u64).unwrap();
                let b = comm.broadcast(i as usize % 4, comm.rank() as u64).unwrap();
                acc = acc.wrapping_add(s + g.iter().sum::<u64>() + b);
            }
            acc
        });
        assert!(r.iter().all(|&v| v == r[0]));
    }

    #[test]
    fn reduce_with_noncommutative_use_still_deterministic_per_tree() {
        // The tree fixes the combination order; with a commutative op the
        // result is rank-count dependent only.
        let r = run_cluster(8, |mut comm| {
            comm.allreduce(1u64 << comm.rank(), |a, b| a | b).unwrap()
        });
        assert!(r.iter().all(|&v| v == 0xFF));
    }
}
