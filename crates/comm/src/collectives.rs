//! Collective operations, built on point-to-point messaging.
//!
//! Broadcast and reduce use binomial trees (⌈log₂ n⌉ rounds), like MPICH's
//! small-message algorithms; allreduce is reduce-to-root + broadcast, which
//! is exactly the structure of Smart's global combination (merge local
//! combination maps toward the master, then redistribute the global map for
//! the next iteration — Algorithm 1 lines 4 and 11–17).
//!
//! Every collective consumes one value from the per-rank collective sequence
//! and embeds it in the message tag, so consecutive collectives can never
//! consume each other's messages even when ranks run ahead.

use crate::communicator::{Communicator, Tag, COLLECTIVE_BASE};
use crate::error::{CommError, CommResult};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Internal collective op codes folded into the tag.
#[derive(Clone, Copy)]
enum Op {
    Barrier = 1,
    Broadcast = 2,
    Reduce = 3,
    Gather = 4,
    Scatter = 5,
    ReduceScatter = 6,
    AllGather = 7,
    AllGatherAlive = 8,
}

impl Communicator {
    /// Tag layout: bit 48 = collective marker, bits 16..48 = per-rank
    /// collective sequence (wrapping), bits 8..16 = round within the
    /// collective, bits 0..8 = op code.
    fn coll_tag(&mut self, op: Op) -> Tag {
        let seq = self.collective_seq & 0xFFFF_FFFF;
        self.collective_seq += 1;
        COLLECTIVE_BASE | (seq << 16) | op as u64
    }

    /// Synchronize all ranks (dissemination barrier, ⌈log₂ n⌉ rounds).
    pub fn barrier(&mut self) -> CommResult<()> {
        let tag = self.coll_tag(Op::Barrier);
        let n = self.size();
        let mut round = 0u64;
        let mut dist = 1usize;
        while dist < n {
            let to = (self.rank() + dist) % n;
            let from = (self.rank() + n - dist) % n;
            self.send(to, tag | round << 8, &())?;
            let () = self.recv(from, tag | round << 8)?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcast `value` from `root` to every rank; returns the value on all
    /// ranks. Non-root ranks pass their own `value`, which is discarded
    /// (mirroring MPI's in-place buffer semantics without the `MaybeUninit`
    /// dance).
    pub fn broadcast<T>(&mut self, root: usize, value: T) -> CommResult<T>
    where
        T: Serialize + DeserializeOwned,
    {
        if root >= self.size() {
            return Err(CommError::RankOutOfRange { rank: root, size: self.size() });
        }
        let tag = self.coll_tag(Op::Broadcast);
        let n = self.size();
        let relative = (self.rank() + n - root) % n;

        let mut current = value;
        // Receive phase: find the bit at which this rank joins the tree.
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                let src = (self.rank() + n - mask) % n;
                current = self.recv(src, tag)?;
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward down the remaining subtree.
        mask >>= 1;
        while mask > 0 {
            if relative + mask < n {
                let dst = (self.rank() + mask) % n;
                self.send(dst, tag, &current)?;
            }
            mask >>= 1;
        }
        Ok(current)
    }

    /// Reduce all ranks' values to `root` with `op` (binomial tree).
    /// Returns `Some(result)` on the root, `None` elsewhere.
    ///
    /// `op(acc, incoming)` must be associative and commutative, like an MPI
    /// reduction operator.
    pub fn reduce<T>(
        &mut self,
        root: usize,
        value: T,
        op: impl Fn(T, T) -> T,
    ) -> CommResult<Option<T>>
    where
        T: Serialize + DeserializeOwned,
    {
        if root >= self.size() {
            return Err(CommError::RankOutOfRange { rank: root, size: self.size() });
        }
        let tag = self.coll_tag(Op::Reduce);
        let n = self.size();
        let relative = (self.rank() + n - root) % n;

        let mut acc = Some(value);
        let mut mask = 1usize;
        while mask < n {
            if relative & mask == 0 {
                let partner_rel = relative | mask;
                if partner_rel < n {
                    let src = (partner_rel + root) % n;
                    let incoming: T = self.recv(src, tag)?;
                    // PANIC-FREE: the receive branch always refills acc; only the send branch takes it, then breaks.
                    acc = Some(op(acc.take().expect("acc present"), incoming));
                }
            } else {
                let dst = (relative - mask + root) % n;
                // PANIC-FREE: acc is taken exactly once, here, and the loop breaks immediately after.
                let v = acc.take().expect("acc present");
                self.send(dst, tag, &v)?;
                break;
            }
            mask <<= 1;
        }
        Ok(if self.rank() == root { acc } else { None })
    }

    /// Reduce to rank 0 then broadcast the result back: every rank gets the
    /// global reduction.
    pub fn allreduce<T>(&mut self, value: T, op: impl Fn(T, T) -> T) -> CommResult<T>
    where
        T: Serialize + DeserializeOwned + Default,
    {
        let reduced = self.reduce(0, value, op)?;
        self.broadcast(0, reduced.unwrap_or_default())
    }

    /// Element-wise in-place sum allreduce over a float slice — the pattern
    /// hand-written MPI analytics use (`MPI_Allreduce` over contiguous
    /// arrays, §5.3).
    pub fn allreduce_sum_f64(&mut self, buf: &mut [f64]) -> CommResult<()> {
        let out = self.allreduce(buf.to_vec(), |mut a, b| {
            debug_assert_eq!(a.len(), b.len(), "allreduce_sum_f64 length mismatch across ranks");
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        })?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    /// Gather every rank's value at `root` (binomial tree, ⌈log₂ n⌉ rounds —
    /// the reduce tree run in reverse, so the root performs O(log n) receives
    /// instead of n − 1 serialized ones). Returns `Some(values)` in rank
    /// order at the root, `None` elsewhere.
    pub fn gather<T>(&mut self, root: usize, value: T) -> CommResult<Option<Vec<T>>>
    where
        T: Serialize + DeserializeOwned,
    {
        if root >= self.size() {
            return Err(CommError::RankOutOfRange { rank: root, size: self.size() });
        }
        let tag = self.coll_tag(Op::Gather);
        let n = self.size();
        let relative = (self.rank() + n - root) % n;

        // Accumulate this rank's binomial subtree as (relative rank, value)
        // pairs, then hand the batch to the parent in one message.
        let mut collected: Vec<(u64, T)> = vec![(relative as u64, value)];
        let mut mask = 1usize;
        while mask < n {
            if relative & mask == 0 {
                let child_rel = relative | mask;
                if child_rel < n {
                    let src = (child_rel + root) % n;
                    let mut incoming: Vec<(u64, T)> = self.recv(src, tag)?;
                    collected.append(&mut incoming);
                }
            } else {
                let dst = (relative - mask + root) % n;
                self.send(dst, tag, &collected)?;
                return Ok(None);
            }
            mask <<= 1;
        }
        // Only the root (relative rank 0) reaches here; every rank's value
        // arrived exactly once.
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (rel, v) in collected {
            // PANIC-FREE: the index is reduced mod n = slots.len(), so it is in bounds.
            slots[(rel as usize + root) % n] = Some(v);
        }
        // PANIC-FREE: the binomial tree delivers each of the n relative ranks exactly once, filling every slot.
        Ok(Some(slots.into_iter().map(|s| s.expect("every rank gathered")).collect()))
    }

    /// Gather at rank 0 then broadcast: every rank gets all values in rank
    /// order.
    pub fn allgather<T>(&mut self, value: T) -> CommResult<Vec<T>>
    where
        T: Serialize + DeserializeOwned,
    {
        let gathered = self.gather(0, value)?;
        self.broadcast(0, gathered.unwrap_or_default())
    }

    /// Scatter one piece to each rank from `root`. The root passes
    /// `Some(pieces)` with exactly `size` elements; other ranks pass `None`.
    /// Every rank returns its own piece.
    pub fn scatter<T>(&mut self, root: usize, pieces: Option<Vec<T>>) -> CommResult<T>
    where
        T: Serialize + DeserializeOwned,
    {
        if root >= self.size() {
            return Err(CommError::RankOutOfRange { rank: root, size: self.size() });
        }
        let tag = self.coll_tag(Op::Scatter);
        if self.rank() == root {
            let pieces =
                pieces.ok_or(CommError::ScatterArity { provided: 0, expected: self.size() })?;
            if pieces.len() != self.size() {
                return Err(CommError::ScatterArity {
                    provided: pieces.len(),
                    expected: self.size(),
                });
            }
            let mut mine = None;
            for (dst, piece) in pieces.into_iter().enumerate() {
                if dst == root {
                    mine = Some(piece);
                } else {
                    self.send(dst, tag, &piece)?;
                }
            }
            // PANIC-FREE: the loop over exactly `size` pieces always hits dst == root once.
            Ok(mine.expect("root piece present"))
        } else {
            self.recv(root, tag)
        }
    }

    /// Ring reduce-scatter: every rank contributes one block per rank, and
    /// rank `r` returns block `r` reduced across all ranks with `op`.
    ///
    /// Bandwidth-optimal: n − 1 steps, each shipping a single block to the
    /// ring successor, so a rank sends `(n−1)/n` of its input — no rank ever
    /// handles the whole reduction, unlike [`reduce`](Self::reduce) which
    /// funnels every block through the root.
    ///
    /// `op(acc, incoming)` must be associative and commutative. `blocks`
    /// must have exactly `size` elements on every rank.
    // PANIC-FREE: every slot index is reduced mod n = slots.len(), so indexing is in bounds.
    pub fn reduce_scatter<T>(&mut self, blocks: Vec<T>, op: impl Fn(T, T) -> T) -> CommResult<T>
    where
        T: Serialize + DeserializeOwned,
    {
        let n = self.size();
        if blocks.len() != n {
            return Err(CommError::ScatterArity { provided: blocks.len(), expected: n });
        }
        let mut slots: Vec<Option<T>> = blocks.into_iter().map(Some).collect();
        if n == 1 {
            // PANIC-FREE: blocks.len() == n == 1 was just checked, and slot 0 starts Some.
            return Ok(slots[0].take().expect("one block"));
        }
        let tag = self.coll_tag(Op::ReduceScatter);
        let rank = self.rank();
        let next = (rank + 1) % n;
        let prev = (rank + n - 1) % n;
        for step in 0..n - 1 {
            // Step s: pass block (rank − 1 − s) downstream and fold the
            // incoming block (rank − 2 − s) into our copy; after n − 1 steps
            // the final fold lands on block `rank`, now fully reduced.
            let step_tag = tag | (((step as u64) & 0xFF) << 8);
            let send_idx = (rank + n - 1 - (step % n)) % n;
            let recv_idx = (rank + 2 * n - 2 - (step % n)) % n;
            // PANIC-FREE: send_idx is the slot folded (and re-filled) last step, never vacated.
            self.send(next, step_tag, slots[send_idx].as_ref().expect("block present"))?;
            let incoming: T = self.recv(prev, step_tag)?;
            // PANIC-FREE: each step takes a distinct recv_idx and stores the fold right back.
            let acc = slots[recv_idx].take().expect("block present");
            slots[recv_idx] = Some(op(acc, incoming));
        }
        // PANIC-FREE: the final step's fold lands on slot `rank` and stores Some.
        Ok(slots[rank].take().expect("own block reduced"))
    }

    /// Ring allgather: every rank contributes `value` and returns all ranks'
    /// values in rank order.
    ///
    /// Like [`reduce_scatter`](Self::reduce_scatter), n − 1 steps each
    /// forwarding one block to the ring successor: a rank sends `(n−1)/n` of
    /// the assembled result, versus the gather-then-broadcast
    /// [`allgather`](Self::allgather) whose root retransmits the full vector
    /// O(log n) times.
    // PANIC-FREE: every slot index is reduced mod n = slots.len(), so indexing is in bounds.
    pub fn allgather_ring<T>(&mut self, value: T) -> CommResult<Vec<T>>
    where
        T: Serialize + DeserializeOwned,
    {
        let n = self.size();
        let rank = self.rank();
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        slots[rank] = Some(value);
        if n > 1 {
            let tag = self.coll_tag(Op::AllGather);
            let next = (rank + 1) % n;
            let prev = (rank + n - 1) % n;
            for step in 0..n - 1 {
                // Step s: forward block (rank − s), the one received last
                // step (or our own at s = 0); receive block (rank − 1 − s).
                let step_tag = tag | (((step as u64) & 0xFF) << 8);
                let send_idx = (rank + n - (step % n)) % n;
                let recv_idx = (rank + 2 * n - 1 - (step % n)) % n;
                // PANIC-FREE: send_idx is our own slot at step 0 and the slot received last step after.
                self.send(next, step_tag, slots[send_idx].as_ref().expect("block present"))?;
                let incoming: T = self.recv(prev, step_tag)?;
                slots[recv_idx] = Some(incoming);
            }
        }
        // PANIC-FREE: after n − 1 ring steps every slot has been filled exactly once.
        Ok(slots.into_iter().map(|s| s.expect("every block received")).collect())
    }

    /// Shard-partitioned allreduce over key-sorted combination-map entries:
    /// every rank returns the global merge of all ranks' entries, sorted by
    /// key.
    ///
    /// Entries are hash-partitioned by key into one shard per rank
    /// (deterministically, so the same key lands on the same shard
    /// everywhere), reduced with a ring [`reduce_scatter`](Self::reduce_scatter)
    /// whose operator is a streaming [`merge_sorted_entries`] join, then
    /// reassembled with a ring [`allgather_ring`](Self::allgather_ring).
    /// Per-rank traffic is `(n−1)/n × local + (n−1)/n × global` entry bytes —
    /// at most ~2× the serialized global map regardless of rank count —
    /// versus the reduce+broadcast [`allreduce`](Self::allreduce) that ships
    /// the whole map through the root at every tree level.
    ///
    /// `entries` need not be sorted or duplicate-free; local duplicates are
    /// coalesced with `merge(acc, incoming)` first, which must be associative
    /// and commutative across ranks.
    pub fn allreduce_sharded<T>(
        &mut self,
        entries: Vec<(i64, T)>,
        merge: impl Fn(&mut T, T),
    ) -> CommResult<Vec<(i64, T)>>
    where
        T: Serialize + DeserializeOwned,
    {
        let mut local = entries;
        local.sort_unstable_by_key(|&(k, _)| k);
        let mut coalesced: Vec<(i64, T)> = Vec::with_capacity(local.len());
        for (k, v) in local {
            match coalesced.last_mut() {
                Some((lk, lv)) if *lk == k => merge(lv, v),
                _ => coalesced.push((k, v)),
            }
        }
        let n = self.size();
        if n == 1 {
            return Ok(coalesced);
        }
        let mut shards: Vec<Vec<(i64, T)>> = (0..n).map(|_| Vec::new()).collect();
        for (k, v) in coalesced {
            // PANIC-FREE: shard_of reduces mod n = shards.len(), so the index is in bounds.
            shards[shard_of(k, n)].push((k, v));
        }
        let mine = self.reduce_scatter(shards, |a, b| merge_sorted_entries(a, b, &merge))?;
        let all = self.allgather_ring(mine)?;
        let mut out: Vec<(i64, T)> = all.into_iter().flatten().collect();
        // Shards partition the key space by hash, not by range, so the
        // concatenation needs one final sort to restore canonical key order.
        out.sort_unstable_by_key(|&(k, _)| k);
        Ok(out)
    }

    /// Fault-aware all-to-all gather over the ranks this rank believes alive
    /// (see [`mark_dead`](Self::mark_dead)): returns `(rank, value)` pairs in
    /// ascending rank order, always including this rank's own contribution.
    ///
    /// Unlike the tree/ring collectives — where one dead rank stalls or
    /// poisons an entire round and different survivors observe different
    /// partial states — the direct exchange makes failure detection
    /// *symmetric*: every survivor talks to every alive peer, so a death
    /// surfaces as [`CommError::PeerGone`] on all survivors.
    ///
    /// The send phase runs to completion before any receive, so even when
    /// this call errors, every surviving peer already holds this rank's
    /// contribution — the invariant fault-tolerant commit protocols need
    /// (a survivor's delta is never lost because a *different* rank died).
    /// Dead peers discovered here are recorded with
    /// [`mark_dead`](Self::mark_dead), so a retry after re-agreement excludes
    /// them; the first `PeerGone` is returned after both phases complete.
    pub fn allgather_alive<T>(&mut self, value: T) -> CommResult<Vec<(usize, T)>>
    where
        T: Serialize + DeserializeOwned,
    {
        let tag = self.coll_tag(Op::AllGatherAlive);
        let rank = self.rank();
        let peers: Vec<usize> = self.alive_ranks().into_iter().filter(|&r| r != rank).collect();
        let payload = smart_wire::to_bytes(&value)?;
        let mut first_gone: Option<CommError> = None;
        for &p in &peers {
            match self.send_bytes(p, tag, payload.clone()) {
                Ok(()) => {}
                Err(CommError::PeerGone { peer }) => {
                    self.mark_dead(peer);
                    first_gone.get_or_insert(CommError::PeerGone { peer });
                }
                Err(e) => return Err(e),
            }
        }
        let mut out: Vec<(usize, T)> = Vec::with_capacity(peers.len() + 1);
        out.push((rank, value));
        for &p in &peers {
            if !self.is_alive(p) {
                continue;
            }
            match self.recv::<T>(p, tag) {
                Ok(v) => out.push((p, v)),
                Err(CommError::PeerGone { peer }) => {
                    self.mark_dead(peer);
                    first_gone.get_or_insert(CommError::PeerGone { peer });
                }
                Err(e) => return Err(e),
            }
        }
        if let Some(e) = first_gone {
            return Err(e);
        }
        out.sort_unstable_by_key(|&(r, _)| r);
        Ok(out)
    }

    // ---- byte-level collectives -------------------------------------------
    //
    // The same trees and rings as the typed collectives above, but moving
    // caller-encoded payloads. The caller supplies how to `encode` its
    // accumulator for the wire and how to `fold` an incoming peer payload
    // into it — which is what lets `smart-core`'s global combination fold
    // received reduction maps *in place* through a validating wire view
    // instead of decoding every entry into an owned vector first. Each
    // variant applies folds in exactly the same order as its typed twin, so
    // the two paths are bit-identical for deterministic merge operators.

    /// Byte-payload [`broadcast`](Self::broadcast): `root`'s `bytes` are
    /// forwarded verbatim down the binomial tree; every rank returns them.
    /// Non-root ranks pass their own (discarded) buffer, usually empty.
    pub fn broadcast_bytes(&mut self, root: usize, bytes: Vec<u8>) -> CommResult<Vec<u8>> {
        if root >= self.size() {
            return Err(CommError::RankOutOfRange { rank: root, size: self.size() });
        }
        let tag = self.coll_tag(Op::Broadcast);
        let n = self.size();
        let relative = (self.rank() + n - root) % n;

        let mut current = bytes;
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                let src = (self.rank() + n - mask) % n;
                current = self.recv_bytes(src, tag)?;
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if relative + mask < n {
                let dst = (self.rank() + mask) % n;
                self.send_bytes(dst, tag, current.clone())?;
            }
            mask >>= 1;
        }
        Ok(current)
    }

    /// Byte-payload [`reduce`](Self::reduce): children's encoded payloads
    /// are folded into `value` in binomial-tree (mask) order — the same
    /// order the typed reduce applies `op`. Returns `Some(acc)` on the
    /// root, `None` elsewhere.
    pub fn reduce_bytes_with<Acc>(
        &mut self,
        root: usize,
        value: Acc,
        mut encode: impl FnMut(&Acc) -> CommResult<Vec<u8>>,
        mut fold: impl FnMut(Acc, Vec<u8>) -> CommResult<Acc>,
    ) -> CommResult<Option<Acc>> {
        if root >= self.size() {
            return Err(CommError::RankOutOfRange { rank: root, size: self.size() });
        }
        let tag = self.coll_tag(Op::Reduce);
        let n = self.size();
        let relative = (self.rank() + n - root) % n;

        let mut acc = Some(value);
        let mut mask = 1usize;
        while mask < n {
            if relative & mask == 0 {
                let partner_rel = relative | mask;
                if partner_rel < n {
                    let src = (partner_rel + root) % n;
                    let incoming = self.recv_bytes(src, tag)?;
                    // PANIC-FREE: the receive branch always refills acc; only the send branch clears it, then breaks.
                    acc = Some(fold(acc.take().expect("acc present"), incoming)?);
                }
            } else {
                let dst = (relative - mask + root) % n;
                // PANIC-FREE: acc is cleared exactly once, just below, and the loop breaks immediately after.
                let payload = encode(acc.as_ref().expect("acc present"))?;
                self.send_bytes(dst, tag, payload)?;
                acc = None;
                break;
            }
            mask <<= 1;
        }
        Ok(if self.rank() == root { acc } else { None })
    }

    /// Byte-payload [`reduce_scatter`](Self::reduce_scatter): ring steps
    /// identical to the typed version, but each hop ships `encode(block)`
    /// and folds the incoming payload with `fold(block, bytes)`.
    // PANIC-FREE: every slot index is reduced mod n = slots.len(), so indexing is in bounds.
    pub fn reduce_scatter_bytes_with<Acc>(
        &mut self,
        blocks: Vec<Acc>,
        mut encode: impl FnMut(&Acc) -> CommResult<Vec<u8>>,
        mut fold: impl FnMut(Acc, Vec<u8>) -> CommResult<Acc>,
    ) -> CommResult<Acc> {
        let n = self.size();
        if blocks.len() != n {
            return Err(CommError::ScatterArity { provided: blocks.len(), expected: n });
        }
        let mut slots: Vec<Option<Acc>> = blocks.into_iter().map(Some).collect();
        if n == 1 {
            // PANIC-FREE: blocks.len() == n == 1 was just checked, and slot 0 starts Some.
            return Ok(slots[0].take().expect("one block"));
        }
        let tag = self.coll_tag(Op::ReduceScatter);
        let rank = self.rank();
        let next = (rank + 1) % n;
        let prev = (rank + n - 1) % n;
        for step in 0..n - 1 {
            let step_tag = tag | (((step as u64) & 0xFF) << 8);
            let send_idx = (rank + n - 1 - (step % n)) % n;
            let recv_idx = (rank + 2 * n - 2 - (step % n)) % n;
            // PANIC-FREE: send_idx is the slot folded (and re-filled) last step, never vacated.
            let payload = encode(slots[send_idx].as_ref().expect("block present"))?;
            self.send_bytes(next, step_tag, payload)?;
            let incoming = self.recv_bytes(prev, step_tag)?;
            // PANIC-FREE: each step takes a distinct recv_idx and stores the fold right back.
            let acc = slots[recv_idx].take().expect("block present");
            slots[recv_idx] = Some(fold(acc, incoming)?);
        }
        // PANIC-FREE: the final step's fold lands on slot `rank` and stores Some.
        Ok(slots[rank].take().expect("own block reduced"))
    }

    /// Byte-payload [`allgather_ring`](Self::allgather_ring): every rank
    /// contributes `bytes` and returns all ranks' payloads in rank order,
    /// forwarded verbatim around the ring.
    // PANIC-FREE: every slot index is reduced mod n = slots.len(), so indexing is in bounds.
    pub fn allgather_ring_bytes(&mut self, bytes: Vec<u8>) -> CommResult<Vec<Vec<u8>>> {
        let n = self.size();
        let rank = self.rank();
        let mut slots: Vec<Option<Vec<u8>>> = (0..n).map(|_| None).collect();
        slots[rank] = Some(bytes);
        if n > 1 {
            let tag = self.coll_tag(Op::AllGather);
            let next = (rank + 1) % n;
            let prev = (rank + n - 1) % n;
            for step in 0..n - 1 {
                let step_tag = tag | (((step as u64) & 0xFF) << 8);
                let send_idx = (rank + n - (step % n)) % n;
                let recv_idx = (rank + 2 * n - 1 - (step % n)) % n;
                // PANIC-FREE: send_idx is our own slot at step 0 and the slot received last step after.
                let payload = slots[send_idx].as_ref().expect("block present").clone();
                self.send_bytes(next, step_tag, payload)?;
                let incoming = self.recv_bytes(prev, step_tag)?;
                slots[recv_idx] = Some(incoming);
            }
        }
        // PANIC-FREE: after n − 1 ring steps every slot has been filled exactly once.
        Ok(slots.into_iter().map(|s| s.expect("every block received")).collect())
    }

    /// Byte-payload [`allgather_alive`](Self::allgather_alive): identical
    /// fault protocol (send-all-then-receive, deaths recorded, first
    /// `PeerGone` returned after both phases), but payloads stay encoded.
    pub fn allgather_alive_bytes(&mut self, bytes: Vec<u8>) -> CommResult<Vec<(usize, Vec<u8>)>> {
        let tag = self.coll_tag(Op::AllGatherAlive);
        let rank = self.rank();
        let peers: Vec<usize> = self.alive_ranks().into_iter().filter(|&r| r != rank).collect();
        let mut first_gone: Option<CommError> = None;
        for &p in &peers {
            match self.send_bytes(p, tag, bytes.clone()) {
                Ok(()) => {}
                Err(CommError::PeerGone { peer }) => {
                    self.mark_dead(peer);
                    first_gone.get_or_insert(CommError::PeerGone { peer });
                }
                Err(e) => return Err(e),
            }
        }
        let mut out: Vec<(usize, Vec<u8>)> = Vec::with_capacity(peers.len() + 1);
        out.push((rank, bytes));
        for &p in &peers {
            if !self.is_alive(p) {
                continue;
            }
            match self.recv_bytes(p, tag) {
                Ok(v) => out.push((p, v)),
                Err(CommError::PeerGone { peer }) => {
                    self.mark_dead(peer);
                    first_gone.get_or_insert(CommError::PeerGone { peer });
                }
                Err(e) => return Err(e),
            }
        }
        if let Some(e) = first_gone {
            return Err(e);
        }
        out.sort_unstable_by_key(|&(r, _)| r);
        Ok(out)
    }
}

/// The shard (owning rank) for `key` among `n` ranks. Deterministic and
/// uniform: splitmix64-style finalizer over the key, reduced mod `n`, so
/// every rank routes a given key to the same shard without coordination.
/// Public so callers driving [`Communicator::reduce_scatter_bytes_with`] themselves (the
/// wire-view combination path in `smart-core`) partition identically to
/// [`Communicator::allreduce_sharded`].
pub fn shard_of(key: i64, n: usize) -> usize {
    let mut h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= h >> 29;
    (h % n as u64) as usize
}

/// Merge two key-sorted, duplicate-free entry vectors into one, applying
/// `merge(acc, incoming)` to values sharing a key (`a` supplies the
/// accumulator, `b` the incoming value). A streaming merge-join: O(|a| + |b|)
/// moves, no hashing, no rebuild of an intermediate map.
pub fn merge_sorted_entries<K: Ord, T>(
    a: Vec<(K, T)>,
    b: Vec<(K, T)>,
    mut merge: impl FnMut(&mut T, T),
) -> Vec<(K, T)> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        let took = match (ai.peek(), bi.peek()) {
            (Some((ka, _)), Some((kb, _))) => match ka.cmp(kb) {
                std::cmp::Ordering::Less => ai.next(),
                std::cmp::Ordering::Greater => bi.next(),
                std::cmp::Ordering::Equal => {
                    // PANIC-FREE: both sides just peeked Some, so next() yields on each.
                    let (k, mut va) = ai.next().expect("peeked");
                    // PANIC-FREE: both sides just peeked Some, so next() yields on each.
                    let (_, vb) = bi.next().expect("peeked");
                    merge(&mut va, vb);
                    Some((k, va))
                }
            },
            (Some(_), None) => ai.next(),
            (None, Some(_)) => bi.next(),
            (None, None) => break,
        };
        // PANIC-FREE: every non-break match arm advanced an iterator that peeked Some.
        out.push(took.expect("one side non-empty"));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::run_cluster;

    #[test]
    fn barrier_completes_on_all_sizes() {
        for n in [1, 2, 3, 4, 5, 8] {
            run_cluster(n, |mut comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
            });
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for n in [1, 2, 3, 4, 7] {
            for root in 0..n {
                let r = run_cluster(n, |mut comm| {
                    let v = if comm.rank() == root { vec![root as u64, 99] } else { vec![] };
                    comm.broadcast(root, v).unwrap()
                });
                assert!(r.iter().all(|v| *v == vec![root as u64, 99]), "n={n} root={root}");
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for n in [1, 2, 3, 4, 6, 8] {
            for root in [0, n - 1] {
                let r = run_cluster(n, |mut comm| {
                    comm.reduce(root, comm.rank() as u64 + 1, |a, b| a + b).unwrap()
                });
                let expected: u64 = (1..=n as u64).sum();
                for (rank, v) in r.iter().enumerate() {
                    if rank == root {
                        assert_eq!(*v, Some(expected));
                    } else {
                        assert_eq!(*v, None);
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_on_non_power_of_two() {
        for n in [1, 2, 3, 5, 6, 7] {
            let r = run_cluster(n, |mut comm| {
                comm.allreduce(comm.rank() as i64, |a, b| a.max(b)).unwrap()
            });
            assert!(r.iter().all(|&v| v == n as i64 - 1));
        }
    }

    #[test]
    fn allreduce_sum_f64_matches_manual_sum() {
        let n = 5;
        let r = run_cluster(n, |mut comm| {
            let mut buf = vec![comm.rank() as f64, 1.0, -(comm.rank() as f64)];
            comm.allreduce_sum_f64(&mut buf).unwrap();
            buf
        });
        let total: f64 = (0..n).map(|r| r as f64).sum();
        for v in r {
            assert_eq!(v, vec![total, n as f64, -total]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let r = run_cluster(4, |mut comm| comm.gather(2, comm.rank() as u32 * 10).unwrap());
        assert_eq!(r[2], Some(vec![0, 10, 20, 30]));
        assert_eq!(r[0], None);
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let r = run_cluster(3, |mut comm| comm.allgather(format!("r{}", comm.rank())).unwrap());
        for v in r {
            assert_eq!(v, vec!["r0", "r1", "r2"]);
        }
    }

    #[test]
    fn scatter_distributes_pieces() {
        let r = run_cluster(4, |mut comm| {
            let pieces = (comm.rank() == 1).then(|| vec![100u64, 101, 102, 103]);
            comm.scatter(1, pieces).unwrap()
        });
        assert_eq!(r, vec![100, 101, 102, 103]);
    }

    #[test]
    fn scatter_arity_mismatch_is_an_error() {
        let r = run_cluster(3, |mut comm| {
            let pieces = (comm.rank() == 0).then(|| vec![1u8, 2]); // one short
            comm.scatter(0, pieces)
        });
        assert!(r[0].is_err());
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_talk() {
        // Interleave different collectives many times; sequence-numbered
        // tags must keep them separated even with rank skew.
        let r = run_cluster(4, |mut comm| {
            let mut acc = 0u64;
            for i in 0..20 {
                let s = comm.allreduce(i + comm.rank() as u64, |a, b| a + b).unwrap();
                let g = comm.allgather(comm.rank() as u64).unwrap();
                let b = comm.broadcast(i as usize % 4, comm.rank() as u64).unwrap();
                acc = acc.wrapping_add(s + g.iter().sum::<u64>() + b);
            }
            acc
        });
        assert!(r.iter().all(|&v| v == r[0]));
    }

    #[test]
    fn gather_from_every_root_on_all_sizes() {
        for n in [1, 2, 3, 4, 5, 6, 7, 8] {
            for root in 0..n {
                let r = run_cluster(n, move |mut comm| {
                    comm.gather(root, comm.rank() as u32 * 10).unwrap()
                });
                let expected: Vec<u32> = (0..n as u32).map(|i| i * 10).collect();
                for (rank, v) in r.into_iter().enumerate() {
                    if rank == root {
                        assert_eq!(v, Some(expected.clone()), "n={n} root={root}");
                    } else {
                        assert_eq!(v, None, "n={n} root={root} rank={rank}");
                    }
                }
            }
        }
    }

    #[test]
    fn gather_root_receives_logarithmically_many_messages() {
        // Binomial tree: the root takes ⌈log₂ n⌉ receives, so its children
        // send at most that many messages — the old linear gather made the
        // root the hot spot with n − 1 serialized receives.
        let n = 8;
        let r = run_cluster(n, |mut comm| {
            let before = comm.sent_messages();
            comm.gather(0, comm.rank() as u64).unwrap();
            comm.sent_messages() - before
        });
        assert_eq!(r[0], 0, "root sends nothing");
        assert!(r.iter().all(|&m| m <= 1), "each rank forwards one batched message: {r:?}");
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_reduced_block() {
        for n in [1, 2, 3, 4, 5, 7, 8] {
            let r = run_cluster(n, move |mut comm| {
                let rank = comm.rank();
                // Block j contributed by rank s is (s+1)*(j+1).
                let blocks: Vec<u64> = (0..n).map(|j| ((rank + 1) * (j + 1)) as u64).collect();
                comm.reduce_scatter(blocks, |a, b| a + b).unwrap()
            });
            for (rank, &got) in r.iter().enumerate() {
                let expected: u64 = (0..n).map(|s| ((s + 1) * (rank + 1)) as u64).sum();
                assert_eq!(got, expected, "n={n} rank={rank}");
            }
        }
    }

    #[test]
    fn reduce_scatter_arity_mismatch_is_an_error() {
        let r = run_cluster(3, |mut comm| {
            comm.reduce_scatter(vec![1u8, 2], |a, b| a + b) // one block short
        });
        assert!(r.iter().all(|v| v.is_err()));
    }

    #[test]
    fn allgather_ring_matches_allgather() {
        for n in [1, 2, 3, 5, 8] {
            let r = run_cluster(n, |mut comm| {
                let v = vec![comm.rank() as u64; comm.rank() + 1];
                let ring = comm.allgather_ring(v.clone()).unwrap();
                let tree = comm.allgather(v).unwrap();
                (ring, tree)
            });
            for (rank, (ring, tree)) in r.into_iter().enumerate() {
                assert_eq!(ring, tree, "n={n} rank={rank}");
            }
        }
    }

    /// Deterministic per-rank test entries: overlapping key ranges across
    /// ranks plus in-rank duplicate keys, via a xorshift generator.
    fn test_entries(rank: usize, case: usize) -> Vec<(i64, u64)> {
        match case {
            // Every rank empty.
            0 => Vec::new(),
            // Only rank 0 contributes, with duplicate keys.
            1 => {
                if rank == 0 {
                    vec![(5, 1), (-3, 10), (5, 2), (5, 4)]
                } else {
                    Vec::new()
                }
            }
            // Identical maps on every rank.
            2 => (0..40).map(|k| (k as i64, k as u64 + 1)).collect(),
            // Pseudo-random: keys clustered in [-18, 18] so ranks overlap
            // heavily and duplicates occur within each rank.
            _ => {
                let mut state = (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) + case as u64;
                (0..100)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        ((state % 37) as i64 - 18, state >> 32)
                    })
                    .collect()
            }
        }
    }

    #[test]
    fn allreduce_sharded_matches_allreduce() {
        use super::merge_sorted_entries;
        for n in 1..=8usize {
            for case in 0..4usize {
                let r = run_cluster(n, move |mut comm| {
                    let entries = test_entries(comm.rank(), case);
                    // Reference: the existing reduce+broadcast allreduce over
                    // the same sorted-coalesced entries.
                    let mut sorted = entries.clone();
                    sorted.sort_unstable_by_key(|&(k, _)| k);
                    let mut coalesced: Vec<(i64, u64)> = Vec::new();
                    for (k, v) in sorted {
                        match coalesced.last_mut() {
                            Some((lk, lv)) if *lk == k => *lv += v,
                            _ => coalesced.push((k, v)),
                        }
                    }
                    let reference = comm
                        .allreduce(coalesced, |a, b| merge_sorted_entries(a, b, |x, y| *x += y))
                        .unwrap();
                    let sharded = comm.allreduce_sharded(entries, |x, y| *x += y).unwrap();
                    (sharded, reference)
                });
                for (rank, (sharded, reference)) in r.into_iter().enumerate() {
                    assert_eq!(sharded, reference, "n={n} case={case} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn sharded_allreduce_traffic_is_bounded_by_twice_the_global_map() {
        // Worst case for the bound: identical maps on every rank, so each
        // local map serializes to the same size as the global merged map.
        for n in [2, 3, 5, 8] {
            let entries_per_rank = 256usize;
            let r = run_cluster(n, move |mut comm| {
                let entries: Vec<(i64, u64)> =
                    (0..entries_per_rank).map(|k| (k as i64, 1u64)).collect();
                let before = comm.sent_bytes();
                let out = comm.allreduce_sharded(entries, |a, b| *a += b).unwrap();
                (comm.sent_bytes() - before, out)
            });
            let global: Vec<(i64, u64)> =
                (0..entries_per_rank).map(|k| (k as i64, n as u64)).collect();
            let global_bytes = smart_wire::encoded_len(&global).unwrap();
            for (rank, (sent, out)) in r.into_iter().enumerate() {
                assert_eq!(out, global, "n={n} rank={rank}");
                // 2(n−1) ring messages, each a Vec with an 8-byte length
                // prefix — allow that framing beyond the 2x payload bound.
                let slack = 64 * n as u64;
                assert!(
                    sent <= 2 * global_bytes + slack,
                    "n={n} rank={rank}: sent {sent} bytes > 2x global map ({global_bytes}) + {slack}"
                );
            }
        }
    }

    #[test]
    fn merge_sorted_entries_joins_by_key() {
        use super::merge_sorted_entries;
        let a = vec![(1, 10u64), (3, 30), (5, 50)];
        let b = vec![(0, 1u64), (3, 3), (6, 6)];
        let got = merge_sorted_entries(a, b, |x, y| *x += y);
        assert_eq!(got, vec![(0, 1), (1, 10), (3, 33), (5, 50), (6, 6)]);
        let empty: Vec<(i64, u64)> = Vec::new();
        assert_eq!(merge_sorted_entries(empty.clone(), empty, |x, y| *x += y), Vec::new());
        assert_eq!(merge_sorted_entries(vec![(2, 2u64)], Vec::new(), |x, y| *x += y), vec![(2, 2)]);
    }

    #[test]
    fn allgather_alive_matches_allgather_on_healthy_cluster() {
        for n in [1, 2, 3, 5, 8] {
            let r = run_cluster(n, |mut comm| {
                let pairs = comm.allgather_alive(comm.rank() as u64 * 10).unwrap();
                let plain = comm.allgather(comm.rank() as u64 * 10).unwrap();
                (pairs, plain)
            });
            for (rank, (pairs, plain)) in r.into_iter().enumerate() {
                let expected: Vec<(usize, u64)> = (0..n).map(|s| (s, s as u64 * 10)).collect();
                assert_eq!(pairs, expected, "n={n} rank={rank}");
                assert_eq!(plain, (0..n as u64).map(|s| s * 10).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn allgather_alive_skips_ranks_marked_dead() {
        use crate::{universe, CommConfig};
        let mut comms = universe(3, CommConfig::default());
        let dead = comms.pop().unwrap(); // rank 2 never participates
        drop(dead);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut comm| {
                std::thread::spawn(move || {
                    comm.mark_dead(2);
                    comm.allgather_alive(comm.rank() as u64 + 1).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![(0, 1u64), (1, 2u64)]);
        }
    }

    #[test]
    fn allgather_alive_detects_death_then_retry_succeeds() {
        use crate::CommError;
        use crate::{universe, CommConfig};
        let mut comms = universe(3, CommConfig::default());
        let dead = comms.pop().unwrap();
        drop(dead); // rank 2 dies before the collective: fail-stop at a boundary
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut comm| {
                std::thread::spawn(move || {
                    // First attempt: every survivor sees the death symmetrically.
                    let err = comm.allgather_alive(7u64).unwrap_err();
                    assert_eq!(err, CommError::PeerGone { peer: 2 });
                    assert!(!comm.is_alive(2), "death must be recorded for the retry");
                    // Retry excludes the dead rank and completes.
                    comm.allgather_alive(comm.rank() as u64).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![(0, 0u64), (1, 1u64)]);
        }
    }

    #[test]
    fn reduce_with_noncommutative_use_still_deterministic_per_tree() {
        // The tree fixes the combination order; with a commutative op the
        // result is rank-count dependent only.
        let r =
            run_cluster(8, |mut comm| comm.allreduce(1u64 << comm.rank(), |a, b| a | b).unwrap());
        assert!(r.iter().all(|&v| v == 0xFF));
    }
}
