//! Model-checked credit-window invariants for the streaming transport
//! (in-transit mode): on every schedule the stager buffers at most
//! `window × chunk_bytes`, end-of-stream terminates cleanly (never a hang),
//! and a dead stager surfaces as `PeerGone` to its producer.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p smart-comm --test loom_credit`
#![cfg(loom)]

use smart_comm::stream::{StreamConfig, StreamReceiver, StreamSender};
use smart_comm::{CommConfig, CommError};
use smart_sync::{model, thread};

fn two_ranks() -> (smart_comm::Communicator, smart_comm::Communicator) {
    let mut u = smart_comm::universe(2, CommConfig::default()).into_iter();
    (u.next().unwrap(), u.next().unwrap())
}

#[test]
fn stager_buffering_never_exceeds_credit_window() {
    model::check(|| {
        let window = 1usize;
        let steps = 3usize;
        let payload_bytes = smart_wire::encoded_len(&vec![0u64; 4]).unwrap() as usize;
        let (mut prod, mut stag) = two_ranks();
        thread::scope(|s| {
            s.spawn(move || {
                let mut tx = StreamSender::<u64>::new(1, StreamConfig::with_window(window));
                for t in 0..steps {
                    tx.feed(&mut prod, 0, &vec![t as u64; 4]).unwrap();
                    // The producer can never hold more credits than the
                    // window it started with.
                    assert!(tx.credits() <= window, "credits {} > window", tx.credits());
                }
                tx.finish(&mut prod).unwrap();
            });
            let mut rx = StreamReceiver::<u64>::new(0);
            let mut got = 0usize;
            while rx.recv(&mut stag).unwrap().is_some() {
                got += 1;
            }
            assert_eq!(got, steps, "every fed step must arrive exactly once");
            // The paper's staging-node memory bound: un-consumed payload on
            // the stager is capped by the credit window on EVERY schedule.
            assert!(
                rx.stats().buffered_bytes_peak <= (window * payload_bytes) as u64,
                "buffered {} bytes > window bound {}",
                rx.stats().buffered_bytes_peak,
                window * payload_bytes
            );
        });
    });
}

#[test]
fn empty_stream_eos_never_hangs() {
    model::check(|| {
        let (mut prod, mut stag) = two_ranks();
        thread::scope(|s| {
            s.spawn(move || {
                let tx = StreamSender::<u64>::new(1, StreamConfig::with_window(1));
                // No data at all: finish() must still deliver EOS.
                tx.finish(&mut prod).unwrap();
            });
            let mut rx = StreamReceiver::<u64>::new(0);
            // If EOS could be lost on any schedule, this recv would park
            // forever and the deadlock detector would fail the model.
            assert!(rx.recv(&mut stag).unwrap().is_none());
            assert!(rx.is_finished());
        });
    });
}

#[test]
fn dead_stager_surfaces_as_peer_gone_never_a_hang() {
    model::check(|| {
        let (mut prod, mut stag) = two_ranks();
        thread::scope(|s| {
            s.spawn(move || {
                // Consume a single chunk, then die mid-stream (drops the
                // communicator, broadcasting the death notice).
                let mut rx = StreamReceiver::<u64>::new(0);
                rx.recv(&mut stag).unwrap();
            });
            let mut tx = StreamSender::<u64>::new(1, StreamConfig::with_window(1));
            let mut outcome = Ok(());
            for t in 0..4u64 {
                if let Err(e) = tx.feed(&mut prod, 0, &[t; 4]) {
                    outcome = Err(e);
                    break;
                }
            }
            // On every schedule the producer either finished its 4 feeds
            // before the stager died, or got PeerGone — never a hang, and
            // never any other error.
            match outcome {
                Ok(()) | Err(CommError::PeerGone { peer: 1 }) => {}
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        });
    });
}
