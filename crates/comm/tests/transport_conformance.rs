//! Transport conformance suite: every behavioural guarantee the
//! [`smart_comm::Transport`] contract makes is asserted here against all
//! three backends — the in-process channel mesh, TCP loopback, and Unix
//! domain sockets — by running the *same* closure under each
//! [`TransportKind`]. A new backend passes this file or it is not a
//! transport.
//!
//! The guarantees under test (see `crates/comm/src/transport/mod.rs`):
//!
//! * FIFO per `(src, dest)` connection, demultiplexed by `(src, tag)`;
//! * out-of-order tags buffer, never block, and deliver by index;
//! * sends never block on a slow receiver (ring collectives stay
//!   deadlock-free);
//! * a dead peer surfaces as [`CommError::PeerGone`] — never a hang — from
//!   blocking, non-blocking, and deadline receives alike;
//! * data buffered before a death notice is still delivered;
//! * the byte collectives and typed collectives agree bit-for-bit across
//!   backends.

use std::time::Duration;

use smart_comm::{
    run_cluster_with, CommConfig, CommError, Communicator, StreamConfig, StreamReceiver,
    StreamSender, TransportKind,
};

const BACKENDS: [(&str, TransportKind); 3] = [
    ("inproc", TransportKind::InProcess),
    ("tcp", TransportKind::Tcp),
    ("uds", TransportKind::Uds),
];

/// Run `f` as an SPMD region over `n` ranks on the given backend.
fn cluster<R, F>(n: usize, kind: TransportKind, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Communicator) -> R + Sync,
{
    let config = CommConfig { transport: Some(kind), ..CommConfig::default() };
    run_cluster_with(n, config, f)
}

/// Run `f` on every backend and return one result set per backend, so
/// callers can also assert cross-backend bit-identity.
fn on_all_backends<R, F>(n: usize, f: F) -> Vec<(&'static str, Vec<R>)>
where
    R: Send,
    F: Fn(Communicator) -> R + Sync,
{
    BACKENDS.iter().map(|&(name, kind)| (name, cluster(n, kind, &f))).collect()
}

#[test]
fn fifo_order_is_preserved_per_src_and_tag() {
    for (name, results) in on_all_backends(2, |mut comm| {
        if comm.rank() == 0 {
            for i in 0..200u64 {
                comm.send(1, 7, &i).unwrap();
            }
            Vec::new()
        } else {
            (0..200).map(|_| comm.recv::<u64>(0, 7).unwrap()).collect()
        }
    }) {
        assert_eq!(results[1], (0..200).collect::<Vec<u64>>(), "backend {name}");
    }
}

#[test]
fn out_of_order_tags_buffer_and_match_by_index() {
    for (name, results) in on_all_backends(2, |mut comm| {
        if comm.rank() == 0 {
            for tag in (0..64u64).rev() {
                comm.send(1, tag, &(tag * 3)).unwrap();
            }
            Vec::new()
        } else {
            // Receive in ascending tag order: every message but the last
            // sent must come out of the mailbox buffer.
            (0..64u64).map(|tag| comm.recv::<u64>(0, tag).unwrap()).collect()
        }
    }) {
        assert_eq!(results[1], (0..64).map(|t| t * 3).collect::<Vec<u64>>(), "backend {name}");
    }
}

#[test]
fn messages_demultiplex_by_source() {
    for (name, results) in on_all_backends(3, |mut comm| {
        match comm.rank() {
            0 => {
                // Pull rank 2's message first even though rank 1's likely
                // arrives earlier — source matching must hold regardless of
                // arrival interleaving.
                let b = comm.recv::<u64>(2, 5).unwrap();
                let a = comm.recv::<u64>(1, 5).unwrap();
                vec![a, b]
            }
            r => {
                comm.send(0, 5, &(r as u64 * 100)).unwrap();
                Vec::new()
            }
        }
    }) {
        assert_eq!(results[0], vec![100, 200], "backend {name}");
    }
}

#[test]
fn try_recv_and_recv_timeout_observe_sent_data() {
    for (name, results) in on_all_backends(2, |mut comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, &11u64).unwrap();
            // Stay alive until rank 1 confirms receipt, so its polls race
            // against delivery, not against our death notice.
            comm.recv::<u64>(1, 2).unwrap()
        } else {
            // Socket delivery is asynchronous: poll until the message
            // lands, then confirm a deadline receive on an empty pair
            // really expires.
            let mut v = None;
            while v.is_none() {
                v = comm.try_recv::<u64>(0, 1).unwrap();
            }
            let expired = comm.recv_timeout::<u64>(0, 9, Duration::from_millis(10)).unwrap();
            assert!(expired.is_none(), "nothing was ever sent on tag 9");
            comm.send(0, 2, &1u64).unwrap();
            v.unwrap()
        }
    }) {
        assert_eq!(results[1], 11, "backend {name}");
    }
}

#[test]
fn dead_peer_is_an_error_not_a_hang() {
    for &(name, kind) in &BACKENDS {
        let results = cluster(2, kind, |mut comm| {
            if comm.rank() == 1 {
                // Exit immediately; the Drop impl broadcasts the death notice.
                return (0, 0);
            }
            // Blocking receive: must wake on the death notice.
            let blocking = match comm.recv::<u64>(1, 3) {
                Err(CommError::PeerGone { peer }) => peer,
                other => panic!("expected PeerGone, got {other:?}"),
            };
            // Once the notice is buffered, the non-blocking and deadline
            // variants must surface it too.
            let polled = match comm.try_recv::<u64>(1, 4) {
                Err(CommError::PeerGone { peer }) => peer,
                other => panic!("expected PeerGone, got {other:?}"),
            };
            match comm.recv_timeout::<u64>(1, 5, Duration::from_secs(5)) {
                Err(CommError::PeerGone { .. }) => {}
                other => panic!("expected PeerGone, got {other:?}"),
            }
            (blocking, polled)
        });
        assert_eq!(results[0], (1, 1), "backend {name}");
    }
}

#[test]
fn data_sent_before_death_is_still_delivered() {
    for &(name, kind) in &BACKENDS {
        let results = cluster(2, kind, |mut comm| {
            if comm.rank() == 1 {
                comm.send(0, 6, &77u64).unwrap();
                return 0;
            }
            // The payload races the death notice on the same connection;
            // FIFO guarantees the payload is framed first, and the mailbox
            // guarantees buffered data is served before a buffered notice.
            let v = comm.recv::<u64>(1, 6).unwrap();
            match comm.recv::<u64>(1, 6) {
                Err(CommError::PeerGone { peer: 1 }) => {}
                other => panic!("expected PeerGone after drained data, got {other:?}"),
            }
            v
        });
        assert_eq!(results[0], 77, "backend {name}");
    }
}

#[test]
fn collectives_agree_bit_for_bit_across_backends() {
    let per_backend = on_all_backends(4, |mut comm| {
        let r = comm.rank() as u64;
        let sum = comm.allreduce(r + 1, |a, b| a + b).unwrap();
        let bcast =
            comm.broadcast(2, if comm.rank() == 2 { vec![9u8, 8, 7] } else { vec![] }).unwrap();
        let ring = comm.allgather_ring(r * r).unwrap();
        let blocks: Vec<u64> = (0..4).map(|b| r * 10 + b).collect();
        let scat = comm.reduce_scatter(blocks, |a, b| a + b).unwrap();
        let entries: Vec<(i64, u64)> = (0..8).map(|k| (k, r + k as u64)).collect();
        let sharded = comm.allreduce_sharded(entries, |a, b| *a += b).unwrap();
        (sum, bcast, ring, scat, sharded)
    });
    let (_, reference) = &per_backend[0];
    assert_eq!(reference[0].0, 10, "1+2+3+4");
    for (name, results) in &per_backend {
        assert_eq!(results, reference, "backend {name} diverged from inproc");
    }
}

#[test]
fn byte_collectives_match_their_typed_twins() {
    for (name, results) in on_all_backends(4, |mut comm| {
        let r = comm.rank() as u64;
        // reduce_bytes_with at root 0 must fold in the same order as the
        // typed binomial reduce.
        let typed = comm.reduce(0, r + 1, |a, b| a + b).unwrap();
        let bytes = comm
            .reduce_bytes_with(
                0,
                r + 1,
                |acc| Ok(smart_wire::to_bytes(acc).unwrap()),
                |acc, raw| Ok(acc + smart_wire::from_bytes::<u64>(&raw).unwrap()),
            )
            .unwrap();
        // broadcast_bytes must deliver the root's payload verbatim.
        let payload =
            if comm.rank() == 1 { smart_wire::to_bytes(&1234u64).unwrap() } else { Vec::new() };
        let bc = comm.broadcast_bytes(1, payload).unwrap();
        (typed, bytes, smart_wire::from_bytes::<u64>(&bc).unwrap())
    }) {
        for (rank, (typed, bytes, bc)) in results.iter().enumerate() {
            assert_eq!(typed, bytes, "backend {name} rank {rank}");
            assert_eq!(*bc, 1234, "backend {name} rank {rank}");
        }
        assert_eq!(results[0].0, Some(10), "backend {name} root sum");
    }
}

#[test]
fn allgather_alive_retries_around_a_death() {
    for &(name, kind) in &BACKENDS {
        let results = cluster(3, kind, |mut comm| {
            if comm.rank() == 2 {
                return Vec::new();
            }
            // First attempt may fail with PeerGone (marking rank 2 dead);
            // the retry must settle on the survivor set.
            loop {
                match comm.allgather_alive(comm.rank() as u64) {
                    Ok(pairs) => return pairs,
                    Err(CommError::PeerGone { .. }) => continue,
                    Err(e) => panic!("unexpected error: {e:?}"),
                }
            }
        });
        assert_eq!(results[0], vec![(0, 0), (1, 1)], "backend {name}");
        assert_eq!(results[1], vec![(0, 0), (1, 1)], "backend {name}");
    }
}

#[test]
fn streams_deliver_in_order_with_eos() {
    for &(name, kind) in &BACKENDS {
        let results = cluster(2, kind, |mut comm| {
            if comm.rank() == 0 {
                let mut tx = StreamSender::<u64>::new(1, StreamConfig::with_window(2));
                for step in 0..6u64 {
                    tx.feed(&mut comm, 0, &[step * 2, step * 2 + 1]).unwrap();
                }
                tx.finish(&mut comm).unwrap();
                Vec::new()
            } else {
                let mut rx = StreamReceiver::<u64>::new(0);
                let mut got = Vec::new();
                while !rx.is_finished() {
                    if let Some((_, _, data)) = rx.recv(&mut comm).unwrap() {
                        got.extend(data);
                    }
                }
                got
            }
        });
        assert_eq!(results[1], (0..12).collect::<Vec<u64>>(), "backend {name}");
    }
}

#[test]
fn env_var_selects_backend_when_config_is_none() {
    // TransportKind::from_env is consulted only when CommConfig.transport is
    // None; the explicit config always wins. (We don't mutate the process
    // environment here — parallel tests share it — we just pin the
    // precedence by checking an explicit kind is honoured even if
    // SMART_TRANSPORT says otherwise elsewhere in this run.)
    let results = cluster(2, TransportKind::InProcess, |mut comm| {
        if comm.rank() == 0 {
            comm.send(1, 0, &5u8).unwrap();
            0
        } else {
            comm.recv::<u8>(0, 0).unwrap()
        }
    });
    assert_eq!(results[1], 5);
}
