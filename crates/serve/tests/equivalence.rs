//! The service tier's correctness contract: N jobs submitted through the
//! registry — mixed analytics, mixed tenants, coalesced and not, across
//! priorities — produce wire-serialized per-step results bit-identical to
//! N independent `Scheduler::execute` runs, in both the time-sharing and
//! in-transit placements. Integer-valued inputs keep every f64 merge
//! exact, so the comparisons really are byte equality.

use serde::Serialize;
use smart_analytics::{Histogram, KMeans, Moments};
use smart_core::{Analytics, KeyMode, Scheduler, StepSpec};
use smart_pool::shared_pool;
use smart_serve::{
    CoalesceKey, JobSpec, JobStepResult, Registry, RegistryConfig, SchedArgs, ServeDriver,
    TenantQuota,
};

const K: usize = 3;
const DIMS: usize = 4;
const KMEANS_ITERS: usize = 2;

fn element(t: usize, i: usize) -> f64 {
    ((t * 31 + i * 7) % 10) as f64
}

/// One time-step as two partitions with global offsets, to exercise
/// multi-partition staging.
fn step_parts(t: usize, len: usize) -> Vec<(usize, Vec<f64>)> {
    let half = len / 2;
    let data: Vec<f64> = (0..len).map(|i| element(t, i)).collect();
    vec![(0, data[..half].to_vec()), (half, data[half..].to_vec())]
}

fn centroid_seed() -> Vec<f64> {
    (0..K * DIMS).map(|i| (i * 5 % 11) as f64).collect()
}

/// Per-step `(out bytes, map bytes)` of an isolated `Scheduler::execute`
/// run — the ground truth every submitted job is compared against.
fn reference_steps<A>(
    analytics: A,
    args: SchedArgs<A::Extra>,
    key_mode: KeyMode,
    out_len: usize,
    steps: &[Vec<(usize, Vec<f64>)>],
) -> Vec<(Vec<u8>, Vec<u8>)>
where
    A: Analytics<In = f64> + 'static,
    A::Out: Serialize + Default + Clone,
{
    let pool = shared_pool(2).unwrap();
    let mut sched = Scheduler::new(analytics, args, pool).unwrap();
    let mut out = vec![A::Out::default(); out_len];
    steps
        .iter()
        .map(|parts| {
            let parts: Vec<(usize, &[f64])> =
                parts.iter().map(|(o, d)| (*o, d.as_slice())).collect();
            sched.execute(StepSpec::new(&parts).with_key_mode(key_mode), &mut out).unwrap();
            let out_bytes = smart_wire::to_bytes(&out).unwrap();
            let map_bytes =
                smart_wire::to_bytes(&sched.combination_map().to_sorted_entries()).unwrap();
            (out_bytes, map_bytes)
        })
        .collect()
}

fn assert_steps_match(got: &[JobStepResult], want: &[(Vec<u8>, Vec<u8>)], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: step count");
    for (r, (out, map)) in got.iter().zip(want) {
        assert_eq!(&r.out, out, "{label}: out bytes at step {}", r.step);
        assert_eq!(&r.map, map, "{label}: map bytes at step {}", r.step);
    }
}

/// Five jobs — histogram ×3 (two coalesced), moments, k-means — across
/// four tenants and scrambled priorities, all bit-identical to isolated
/// runs. Also exercised with a single tenant owning every job.
#[test]
fn mixed_jobs_match_isolated_runs() {
    let steps: Vec<_> = (0..4).map(|t| step_parts(t, 48)).collect();

    for tenants in [vec!["solo"], vec!["a", "b", "c", "d"]] {
        let registry: Registry<f64> = Registry::new(RegistryConfig::default());
        for t in &tenants {
            registry.add_tenant(t, TenantQuota::unlimited());
        }
        let tenant = |i: usize| tenants[i % tenants.len()];
        let hist_key = CoalesceKey::new("histogram", "0:10:24");

        let h1 = registry
            .submit(
                JobSpec::new(Histogram::new(0.0, 10.0, 24), SchedArgs::new(2, 1), 24)
                    .with_tenant(tenant(0))
                    .with_priority(1)
                    .with_coalesce(hist_key.clone()),
            )
            .unwrap();
        let h2 = registry
            .submit(
                JobSpec::new(Histogram::new(0.0, 10.0, 24), SchedArgs::new(2, 1), 24)
                    .with_tenant(tenant(1))
                    .with_priority(7)
                    .with_coalesce(hist_key.clone()),
            )
            .unwrap();
        // Same analytics kind, different reduction parameters: must NOT
        // coalesce with h1/h2 (different key), still bit-identical.
        let h3 = registry
            .submit(
                JobSpec::new(Histogram::new(0.0, 10.0, 12), SchedArgs::new(2, 1), 12)
                    .with_tenant(tenant(2))
                    .with_coalesce(CoalesceKey::new("histogram", "0:10:12")),
            )
            .unwrap();
        let mo = registry
            .submit(
                JobSpec::new(Moments, SchedArgs::new(2, 1), 0)
                    .with_tenant(tenant(3))
                    .with_priority(3),
            )
            .unwrap();
        let km = registry
            .submit(
                JobSpec::new(
                    KMeans::new(K, DIMS),
                    SchedArgs::new(2, DIMS).with_extra(centroid_seed()).with_iters(KMEANS_ITERS),
                    K,
                )
                .with_tenant(tenant(0))
                .with_priority(5),
            )
            .unwrap();

        let pool = shared_pool(2).unwrap();
        let mut driver = ServeDriver::new(registry.clone(), pool);
        driver.set_collect_stats(true);
        for parts in &steps {
            let parts: Vec<(usize, &[f64])> =
                parts.iter().map(|(o, d)| (*o, d.as_slice())).collect();
            driver.step(&parts, None).unwrap();
        }
        let stats = driver.finish();

        let hist_ref = reference_steps(
            Histogram::new(0.0, 10.0, 24),
            SchedArgs::new(2, 1),
            KeyMode::Single,
            24,
            &steps,
        );
        assert_steps_match(&h1.join().unwrap(), &hist_ref, "h1 (coalesced leader)");
        assert_steps_match(&h2.join().unwrap(), &hist_ref, "h2 (coalesced member)");
        assert_steps_match(
            &h3.join().unwrap(),
            &reference_steps(
                Histogram::new(0.0, 10.0, 12),
                SchedArgs::new(2, 1),
                KeyMode::Single,
                12,
                &steps,
            ),
            "h3 (uncoalesced histogram)",
        );
        assert_steps_match(
            &mo.join().unwrap(),
            &reference_steps(Moments, SchedArgs::new(2, 1), KeyMode::Single, 0, &steps),
            "moments",
        );
        assert_steps_match(
            &km.join().unwrap(),
            &reference_steps(
                KMeans::new(K, DIMS),
                SchedArgs::new(2, DIMS).with_extra(centroid_seed()).with_iters(KMEANS_ITERS),
                KeyMode::Single,
                K,
                &steps,
            ),
            "k-means",
        );

        // Per-job accounting: one lane per job, one entry per step.
        assert_eq!(stats.jobs.len(), 5, "one lane per job");
        for lane in &stats.jobs {
            assert_eq!(lane.steps, steps.len(), "job {} lane steps", lane.job);
            assert!(lane.result_bytes > 0, "job {} lane bytes", lane.job);
        }
        for t in &tenants {
            assert_eq!(registry.active_jobs(), 0);
            let usage = registry.usage(t).unwrap();
            assert_eq!(usage.failed, 0, "tenant {t}");
        }
    }
}

/// The shared scan stages each step exactly once: staged bytes per step
/// are independent of how many jobs consume the staged buffer.
#[test]
fn staged_bytes_independent_of_job_count() {
    let steps: Vec<_> = (0..3).map(|t| step_parts(t, 32)).collect();
    let staged_bytes_for = |jobs: usize| -> u64 {
        let registry: Registry<f64> = Registry::new(RegistryConfig::default());
        registry.add_tenant("t", TenantQuota::unlimited());
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                registry
                    .submit(
                        JobSpec::new(Histogram::new(0.0, 10.0, 16), SchedArgs::new(1, 1), 16)
                            .with_tenant("t"),
                    )
                    .unwrap()
            })
            .collect();
        let mut driver = ServeDriver::new(registry, shared_pool(1).unwrap());
        driver.set_collect_stats(true);
        for parts in &steps {
            let parts: Vec<(usize, &[f64])> =
                parts.iter().map(|(o, d)| (*o, d.as_slice())).collect();
            driver.step(&parts, None).unwrap();
        }
        let stats = driver.finish();
        for h in handles {
            h.join().unwrap();
        }
        stats.staged_bytes
    };

    let one = staged_bytes_for(1);
    let four = staged_bytes_for(4);
    let expected = (3 * 32 * std::mem::size_of::<f64>()) as u64;
    assert_eq!(one, expected, "one job stages each step once");
    assert_eq!(four, expected, "four jobs still stage each step once");
}

/// A job submitted with a default tenant registered: the minimal path.
/// Checks the default `JobSpec` tenant wiring end to end.
#[test]
fn default_tenant_roundtrip() {
    let registry: Registry<f64> = Registry::new(RegistryConfig::default());
    registry.add_tenant("default", TenantQuota::unlimited());
    let h = registry
        .submit(JobSpec::new(Histogram::new(0.0, 10.0, 8), SchedArgs::new(1, 1), 8).with_steps(2))
        .unwrap();
    let mut driver = ServeDriver::new(registry, shared_pool(1).unwrap());
    for t in 0..2 {
        let data: Vec<f64> = (0..16).map(|i| element(t, i)).collect();
        driver.step(&[(0, &data)], None).unwrap();
    }
    let results = h.join().unwrap();
    assert_eq!(results.len(), 2);
    drop(driver);
}

/// A coalesced member submitted mid-stream adopts the group's accumulated
/// reduction history: its first result reflects every step the leader has
/// seen, exactly like an isolated scheduler that processed them all.
#[test]
fn late_coalesced_member_sees_group_history() {
    let steps: Vec<_> = (0..4).map(|t| step_parts(t, 24)).collect();
    let key = CoalesceKey::new("histogram", "0:10:16");
    let spec = || {
        JobSpec::new(Histogram::new(0.0, 10.0, 16), SchedArgs::new(1, 1), 16)
            .with_tenant("t")
            .with_coalesce(key.clone())
    };

    let registry: Registry<f64> = Registry::new(RegistryConfig::default());
    registry.add_tenant("t", TenantQuota::unlimited());
    let leader = registry.submit(spec()).unwrap();
    let mut driver = ServeDriver::new(registry.clone(), shared_pool(1).unwrap());
    let run_step = |driver: &mut ServeDriver<f64>, parts: &Vec<(usize, Vec<f64>)>| {
        let parts: Vec<(usize, &[f64])> = parts.iter().map(|(o, d)| (*o, d.as_slice())).collect();
        driver.step(&parts, None).unwrap();
    };
    run_step(&mut driver, &steps[0]);
    run_step(&mut driver, &steps[1]);
    let late = registry.submit(spec()).unwrap();
    run_step(&mut driver, &steps[2]);
    run_step(&mut driver, &steps[3]);
    driver.finish();

    let reference = reference_steps(
        Histogram::new(0.0, 10.0, 16),
        SchedArgs::new(1, 1),
        KeyMode::Single,
        16,
        &steps,
    );
    assert_steps_match(&leader.join().unwrap(), &reference, "leader");
    let late_results = late.join().unwrap();
    // The late member's first result is driver step 2 and carries steps
    // 0..=2 of history through the shared map.
    assert_steps_match(&late_results, &reference[2..], "late member");
    assert_eq!(late_results[0].step, 2);
}

/// When a coalesce-group leader completes, the group's reduction history
/// is handed to the surviving member, which continues bit-identically.
#[test]
fn leader_retirement_promotes_survivor_with_history() {
    let steps: Vec<_> = (0..4).map(|t| step_parts(t, 24)).collect();
    let key = CoalesceKey::new("histogram", "0:10:16");
    let registry: Registry<f64> = Registry::new(RegistryConfig::default());
    registry.add_tenant("t", TenantQuota::unlimited());
    let leader = registry
        .submit(
            JobSpec::new(Histogram::new(0.0, 10.0, 16), SchedArgs::new(1, 1), 16)
                .with_tenant("t")
                .with_coalesce(key.clone())
                .with_steps(2),
        )
        .unwrap();
    let survivor = registry
        .submit(
            JobSpec::new(Histogram::new(0.0, 10.0, 16), SchedArgs::new(1, 1), 16)
                .with_tenant("t")
                .with_coalesce(key.clone()),
        )
        .unwrap();
    let mut driver = ServeDriver::new(registry, shared_pool(1).unwrap());
    for parts in &steps {
        let parts: Vec<(usize, &[f64])> = parts.iter().map(|(o, d)| (*o, d.as_slice())).collect();
        driver.step(&parts, None).unwrap();
    }
    driver.finish();

    let reference = reference_steps(
        Histogram::new(0.0, 10.0, 16),
        SchedArgs::new(1, 1),
        KeyMode::Single,
        16,
        &steps,
    );
    assert_steps_match(&leader.join().unwrap(), &reference[..2], "leader (2-step budget)");
    assert_steps_match(&survivor.join().unwrap(), &reference, "promoted survivor");
}

/// The in-transit service tier: producers stream each step once, every
/// stager serves the same job fleet, and every job's per-step results are
/// bit-identical across stagers and to isolated in-situ execution.
mod in_transit {
    use super::*;
    use smart_core::{InTransitConfig, Producer, Topology};
    use smart_serve::run_in_transit_serve;

    const PRODUCERS: usize = 4;
    const STAGERS: usize = 2;
    const PART: usize = 12;
    const STEPS: usize = 3;

    fn partition(t: usize, p: usize) -> Vec<f64> {
        (0..PART).map(|i| element(t, p * PART + i)).collect()
    }

    #[test]
    fn serve_matches_isolated_execution_across_stagers() {
        let topo = Topology::new(PRODUCERS, STAGERS);
        let hist_key = CoalesceKey::new("histogram", "0:10:20");
        type Made = smart_serve::SmartResult<(ServeDriver<f64>, Vec<smart_serve::JobHandle>)>;
        let make_serve = |_s: usize| -> Made {
            let registry: Registry<f64> = Registry::new(RegistryConfig::default());
            registry.add_tenant("ops", TenantQuota::unlimited());
            registry.add_tenant("science", TenantQuota::unlimited());
            // Identical submission sequence on every stager — required by
            // the distributed-serve contract.
            let h1 = registry.submit(
                JobSpec::new(Histogram::new(0.0, 10.0, 20), SchedArgs::new(1, 1), 20)
                    .with_tenant("ops")
                    .with_priority(2)
                    .with_coalesce(hist_key.clone()),
            )?;
            let h2 = registry.submit(
                JobSpec::new(Histogram::new(0.0, 10.0, 20), SchedArgs::new(1, 1), 20)
                    .with_tenant("science")
                    .with_coalesce(hist_key.clone()),
            )?;
            let mo = registry
                .submit(JobSpec::new(Moments, SchedArgs::new(1, 1), 0).with_tenant("science"))?;
            let driver = ServeDriver::new(registry, shared_pool(1).unwrap());
            Ok((driver, vec![h1, h2, mo]))
        };

        let outcome = run_in_transit_serve(
            topo,
            InTransitConfig::with_window(2),
            |prod: &mut Producer<f64>| {
                for t in 0..STEPS {
                    prod.feed(prod.index() * PART, &partition(t, prod.index()))?;
                }
                Ok(())
            },
            make_serve,
        );
        let (_producers, stagers) = outcome.into_result().unwrap();
        assert_eq!(stagers.len(), STAGERS);

        // Ground truth: isolated schedulers fed every producer's partition
        // as one multi-part step.
        let steps: Vec<Vec<(usize, Vec<f64>)>> = (0..STEPS)
            .map(|t| (0..PRODUCERS).map(|p| (p * PART, partition(t, p))).collect())
            .collect();
        let hist_ref = reference_steps(
            Histogram::new(0.0, 10.0, 20),
            SchedArgs::new(1, 1),
            KeyMode::Single,
            20,
            &steps,
        );
        let mo_ref = reference_steps(Moments, SchedArgs::new(1, 1), KeyMode::Single, 0, &steps);

        for (s, stager) in stagers.into_iter().enumerate() {
            assert_eq!(stager.steps, STEPS, "stager {s} steps");
            let mut handles = stager.handles.into_iter();
            let (h1, h2, mo) =
                (handles.next().unwrap(), handles.next().unwrap(), handles.next().unwrap());
            assert_steps_match(&h1.join().unwrap(), &hist_ref, "transit h1");
            assert_steps_match(&h2.join().unwrap(), &hist_ref, "transit h2 (coalesced)");
            assert_steps_match(&mo.join().unwrap(), &mo_ref, "transit moments");
            // The shared scan held on the service tier: each stager staged
            // its producers' partitions once per step, regardless of the
            // three consuming jobs.
            let elems_per_step: usize = topo.producers_of(s).map(|_| PART).sum();
            let expected = (STEPS * elems_per_step * std::mem::size_of::<f64>()) as u64;
            assert_eq!(stager.stats.staged_bytes, expected, "stager {s} staged bytes");
        }
    }
}
