//! Retained-map accounting across the service tier's failure paths: a
//! cancelled, completed, or quota-rejected job must never leak a retained
//! map shell. The memtrack gauge is process-global, so this check lives in
//! its own test binary where no other test holds schedulers concurrently.

use smart_analytics::Histogram;
use smart_core::SmartError;
use smart_memtrack::retained_map_bytes;
use smart_pool::shared_pool;
use smart_serve::{JobSpec, Registry, RegistryConfig, SchedArgs, ServeDriver, TenantQuota};

#[test]
fn failure_paths_release_all_retained_shells() {
    let baseline = retained_map_bytes();

    let registry: Registry<f64> = Registry::new(RegistryConfig { max_active: 8 });
    registry.add_tenant("a", TenantQuota::new(2, 0));
    registry.add_tenant("b", TenantQuota::unlimited());
    let spec = || JobSpec::new(Histogram::new(0.0, 10.0, 16), SchedArgs::new(1, 1), 16);

    let cancelled = registry.submit(spec().with_tenant("a")).unwrap();
    let completed = registry.submit(spec().with_tenant("b").with_steps(2)).unwrap();
    let unbounded = registry.submit(spec().with_tenant("b")).unwrap();
    // Quota rejection allocates nothing that outlives the error.
    assert!(matches!(
        registry.submit(spec().with_tenant("a").with_cost(5)),
        Err(SmartError::QuotaExceeded { .. })
    ));

    let mut driver = ServeDriver::new(registry.clone(), shared_pool(1).unwrap());
    let data: Vec<f64> = (0..32).map(|i| (i % 10) as f64).collect();
    driver.step(&[(0, &data)], None).unwrap();
    assert!(retained_map_bytes() >= baseline, "gauge tracks live maps while jobs run");
    cancelled.cancel();
    driver.step(&[(0, &data)], None).unwrap();
    driver.step(&[(0, &data)], None).unwrap();

    // Two jobs retired mid-run (cancel, step budget); the third lives
    // until the driver finishes.
    assert!(matches!(cancelled.join(), Err(SmartError::Cancelled { .. })));
    assert_eq!(completed.join().unwrap().len(), 2);
    driver.finish();
    assert_eq!(unbounded.join().unwrap().len(), 3);

    assert_eq!(
        retained_map_bytes(),
        baseline,
        "every retired job withdrew its retained-map contribution"
    );
}
