//! The failure paths the service tier must never turn into hangs: quota
//! and capacity rejections are immediate typed errors, cancelled and
//! deadline-expired jobs retire without stalling other tenants, and a
//! dropped handle detaches its job silently.

use smart_analytics::Histogram;
use smart_core::SmartError;
use smart_pool::shared_pool;
use smart_serve::{
    JobEvent, JobSpec, Registry, RegistryConfig, SchedArgs, ServeDriver, TenantQuota,
};

fn spec() -> JobSpec<f64> {
    JobSpec::new(Histogram::new(0.0, 10.0, 8), SchedArgs::new(1, 1), 8)
}

fn step_data(t: usize) -> Vec<f64> {
    (0..16).map(|i| ((t * 31 + i * 7) % 10) as f64).collect()
}

/// A tenant burning through its quota gets typed rejections while another
/// tenant's jobs proceed untouched — rejection never queues, never stalls.
#[test]
fn quota_rejection_does_not_stall_other_tenants() {
    let registry: Registry<f64> = Registry::new(RegistryConfig::default());
    registry.add_tenant("small", TenantQuota::new(1, 0));
    registry.add_tenant("big", TenantQuota::unlimited());

    let small = registry.submit(spec().with_tenant("small").with_steps(3)).unwrap();
    match registry.submit(spec().with_tenant("small")) {
        Err(SmartError::QuotaExceeded { tenant, needed: 1, available: 0 }) => {
            assert_eq!(tenant, "small");
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    let big = registry.submit(spec().with_tenant("big").with_steps(3)).unwrap();

    let mut driver = ServeDriver::new(registry.clone(), shared_pool(1).unwrap());
    for t in 0..3 {
        driver.step(&[(0, &step_data(t))], None).unwrap();
    }
    assert_eq!(small.join().unwrap().len(), 3, "admitted small-tenant job ran");
    assert_eq!(big.join().unwrap().len(), 3, "big tenant unaffected by small's rejection");
    assert_eq!(registry.usage("small").unwrap().rejected, 1);
    assert_eq!(registry.active_jobs(), 0);
}

/// The registry cap rejects with `Busy` naming the occupancy; retiring a
/// job frees the slot.
#[test]
fn busy_cap_rejects_and_recovers() {
    let registry: Registry<f64> = Registry::new(RegistryConfig { max_active: 1 });
    registry.add_tenant("t", TenantQuota::unlimited());
    let first = registry.submit(spec().with_tenant("t").with_steps(1)).unwrap();
    match registry.submit(spec().with_tenant("t")) {
        Err(SmartError::Busy { active: 1, cap: 1 }) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    let mut driver = ServeDriver::new(registry.clone(), shared_pool(1).unwrap());
    driver.step(&[(0, &step_data(0))], None).unwrap();
    assert_eq!(first.join().unwrap().len(), 1);
    // The budget-complete job released its slot; admission recovers.
    let second = registry.submit(spec().with_tenant("t").with_steps(1)).unwrap();
    driver.step(&[(0, &step_data(1))], None).unwrap();
    assert_eq!(second.join().unwrap().len(), 1);
}

/// Cancelling one tenant's job retires it with a typed error before its
/// next step; every other job keeps stepping.
#[test]
fn cancelled_job_does_not_stall_others() {
    let registry: Registry<f64> = Registry::new(RegistryConfig::default());
    registry.add_tenant("a", TenantQuota::unlimited());
    registry.add_tenant("b", TenantQuota::unlimited());
    let doomed = registry.submit(spec().with_tenant("a")).unwrap();
    let steady = registry.submit(spec().with_tenant("b").with_steps(3)).unwrap();

    let mut driver = ServeDriver::new(registry.clone(), shared_pool(1).unwrap());
    driver.step(&[(0, &step_data(0))], None).unwrap();
    let id = doomed.id();
    doomed.cancel();
    driver.step(&[(0, &step_data(1))], None).unwrap();
    driver.step(&[(0, &step_data(2))], None).unwrap();

    match doomed.join() {
        Err(SmartError::Cancelled { job }) => assert_eq!(job, id),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_eq!(steady.join().unwrap().len(), 3, "other tenant unaffected by the cancel");
    assert_eq!(registry.usage("a").unwrap().failed, 1);
    assert_eq!(registry.usage("b").unwrap().completed, 1);
    assert_eq!(registry.active_jobs(), 0);
}

/// A job with an absolute step deadline is retired with
/// `DeadlineExceeded` the moment the driver reaches that step.
#[test]
fn deadline_exceeded_is_typed_and_isolated() {
    let registry: Registry<f64> = Registry::new(RegistryConfig::default());
    registry.add_tenant("t", TenantQuota::unlimited());
    let dead = registry.submit(spec().with_tenant("t").with_deadline(2)).unwrap();
    let alive = registry.submit(spec().with_tenant("t").with_steps(4)).unwrap();

    let mut driver = ServeDriver::new(registry.clone(), shared_pool(1).unwrap());
    for t in 0..4 {
        driver.step(&[(0, &step_data(t))], None).unwrap();
    }
    let dead_id = dead.id();
    match dead.join() {
        Err(SmartError::DeadlineExceeded { job, deadline: 2 }) => assert_eq!(job, dead_id),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(alive.join().unwrap().len(), 4);
    assert_eq!(registry.active_jobs(), 0);
}

/// Dropping a handle detaches the job: the driver retires it at the next
/// step without delivering further events, and the slot frees up.
#[test]
fn dropped_handle_detaches_job() {
    let registry: Registry<f64> = Registry::new(RegistryConfig::default());
    registry.add_tenant("t", TenantQuota::unlimited());
    let gone = registry.submit(spec().with_tenant("t")).unwrap();
    let kept = registry.submit(spec().with_tenant("t").with_steps(2)).unwrap();
    drop(gone);

    let mut driver = ServeDriver::new(registry.clone(), shared_pool(1).unwrap());
    driver.step(&[(0, &step_data(0))], None).unwrap();
    assert_eq!(driver.active_jobs(), 1, "detached job retired at first step");
    driver.step(&[(0, &step_data(1))], None).unwrap();
    assert_eq!(kept.join().unwrap().len(), 2);
    assert_eq!(registry.active_jobs(), 0);
}

/// A job whose partitions do not align with its chunk size fails alone;
/// co-scheduled jobs with compatible shapes keep running.
#[test]
fn shape_mismatch_fails_only_the_offending_job() {
    let registry: Registry<f64> = Registry::new(RegistryConfig::default());
    registry.add_tenant("t", TenantQuota::unlimited());
    // Chunk size 5 cannot tile a 16-element step.
    let bad = registry
        .submit(
            JobSpec::new(Histogram::new(0.0, 10.0, 8), SchedArgs::new(1, 5), 8).with_tenant("t"),
        )
        .unwrap();
    let good = registry.submit(spec().with_tenant("t").with_steps(2)).unwrap();

    let mut driver = ServeDriver::new(registry.clone(), shared_pool(1).unwrap());
    driver.step(&[(0, &step_data(0))], None).unwrap();
    driver.step(&[(0, &step_data(1))], None).unwrap();
    assert!(matches!(bad.join(), Err(SmartError::BadArgs(_))));
    assert_eq!(good.join().unwrap().len(), 2);
}

/// Terminal events are exactly once: after `Done`, the channel closes
/// rather than delivering anything further.
#[test]
fn no_events_after_terminal() {
    let registry: Registry<f64> = Registry::new(RegistryConfig::default());
    registry.add_tenant("t", TenantQuota::unlimited());
    let h = registry.submit(spec().with_tenant("t").with_steps(1)).unwrap();
    let mut driver = ServeDriver::new(registry, shared_pool(1).unwrap());
    driver.step(&[(0, &step_data(0))], None).unwrap();
    driver.step(&[(0, &step_data(1))], None).unwrap();
    drop(driver);
    assert!(matches!(h.recv_event(), Some(JobEvent::Step(_))));
    assert!(matches!(h.recv_event(), Some(JobEvent::Done { steps: 1 })));
    assert!(h.recv_event().is_none(), "channel closed after terminal event");
}
