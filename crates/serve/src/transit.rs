//! The in-transit service tier: producers stream once, stagers serve many
//! jobs per step.
//!
//! Mirrors [`smart_core::run_in_transit`]'s thread-per-rank structure and
//! transport exactly — producers use the unchanged [`Producer`] handle, so
//! the simulation side cannot tell whether one analytics job or a whole
//! registry of them consumes its stream. Each staging rank runs a
//! [`ServeDriver`] instead of a single `Scheduler`, fanning every arriving
//! time-step out to all admitted jobs over one staging pass.

use crate::driver::ServeDriver;
use crate::jobs::JobHandle;
use serde::de::DeserializeOwned;
use serde::Serialize;
use smart_comm::{Communicator, StreamReceiver, StreamRecvStats};
use smart_core::{
    InTransitConfig, Producer, ProducerOutcome, RunStats, SmartError, SmartResult, Topology,
};

/// What one serving staging rank produced.
#[derive(Debug)]
pub struct ServeStagerOutcome {
    /// Handles for the jobs this stager's `make_serve` submitted, in
    /// submission order. Per-step results were delivered to them live;
    /// they are returned here so the caller can drain them after the run.
    pub handles: Vec<JobHandle>,
    /// Time-steps this stager processed (rounds with at least one active
    /// producer anywhere in the staging group).
    pub steps: usize,
    /// Driver stats over all steps and jobs, with the `transit_*`
    /// counters filled in.
    pub stats: RunStats,
    /// Per-producer stream counters, indexed like
    /// [`Topology::producers_of`].
    pub streams: Vec<StreamRecvStats>,
}

/// Per-rank results of an in-transit serve run. Errors stay per-rank,
/// exactly like [`smart_core::InTransitOutcome`].
#[derive(Debug)]
pub struct ServeOutcome<R> {
    /// Producer results, indexed by producer world rank.
    pub producers: Vec<SmartResult<ProducerOutcome<R>>>,
    /// Stager results, indexed by staging index.
    pub stagers: Vec<SmartResult<ServeStagerOutcome>>,
}

impl<R> ServeOutcome<R> {
    /// All-or-nothing view: the per-rank outcomes, or the first error.
    pub fn into_result(self) -> SmartResult<(Vec<ProducerOutcome<R>>, Vec<ServeStagerOutcome>)> {
        let mut producers = Vec::with_capacity(self.producers.len());
        for p in self.producers {
            producers.push(p?);
        }
        let mut stagers = Vec::with_capacity(self.stagers.len());
        for s in self.stagers {
            stagers.push(s?);
        }
        Ok((producers, stagers))
    }
}

/// Run the multi-tenant service tier in-transit: `topo.producers`
/// simulation ranks stream each time-step **once** to `topo.stagers`
/// staging ranks, each of which serves every job its registry admitted.
///
/// `producer` runs once per simulation rank with the unchanged
/// [`Producer`] handle. `make_serve` runs once per staging rank and
/// returns that rank's [`ServeDriver`] (stats collection is switched on by
/// this runner) plus the job handles its submissions produced — **every
/// staging rank must submit an identical job sequence**, because each
/// distributed step runs one global combination per job in the driver's
/// deterministic order.
///
/// Failures stay per-rank; admission rejections happen inside
/// `make_serve` (where `Registry::submit` returns its typed error) and
/// never stall the stream.
pub fn run_in_transit_serve<In, R, FP, FS>(
    topo: Topology,
    config: InTransitConfig,
    producer: FP,
    make_serve: FS,
) -> ServeOutcome<R>
where
    In: Serialize + DeserializeOwned + Clone + Send + Sync + 'static,
    R: Send,
    FP: Fn(&mut Producer<In>) -> SmartResult<R> + Sync,
    FS: Fn(usize) -> SmartResult<(ServeDriver<In>, Vec<JobHandle>)> + Sync,
{
    let world = smart_comm::universe(topo.world_size(), config.comm.clone());
    let staging = smart_comm::universe(topo.stagers, config.comm.clone());
    let stream_cfg = &config.stream;
    let producer = &producer;
    let make_serve = &make_serve;

    let mut world = world.into_iter();
    let producer_comms: Vec<Communicator> = world.by_ref().take(topo.producers).collect();
    let stager_comms: Vec<(Communicator, Communicator)> = world.zip(staging).collect();

    smart_sync::thread::scope(|scope| {
        let producer_handles: Vec<_> = producer_comms
            .into_iter()
            .enumerate()
            .map(|(p, comm)| {
                let cfg = stream_cfg.clone();
                scope.spawn(move || -> SmartResult<ProducerOutcome<R>> {
                    let mut handle = Producer::attach(comm, topo, p, cfg);
                    let result = producer(&mut handle)?;
                    let stream = handle.finish_stream()?;
                    Ok(ProducerOutcome { result, stream })
                })
            })
            .collect();

        let stager_handles: Vec<_> = stager_comms
            .into_iter()
            .enumerate()
            .map(|(s, (mut comm, mut staging_comm))| {
                scope.spawn(move || -> SmartResult<ServeStagerOutcome> {
                    let (mut driver, handles) = make_serve(s)?;
                    driver.set_collect_stats(true);
                    let mut rxs: Vec<StreamReceiver<In>> =
                        topo.producers_of(s).map(StreamReceiver::new).collect();
                    let mut steps = 0usize;
                    loop {
                        // One chunk per still-active producer this round.
                        let me = topo.stager_world_rank(s);
                        let mut owned: Vec<(usize, Vec<In>)> = Vec::with_capacity(rxs.len());
                        for rx in rxs.iter_mut().filter(|rx| !rx.is_finished()) {
                            if let Some((_step, offset, data)) =
                                rx.recv(&mut comm).map_err(|e| SmartError::Comm(e).at(me, steps))?
                            {
                                owned.push((offset, data));
                            }
                        }
                        // Ragged termination, exactly as in the core
                        // runner: the staging group keeps stepping until
                        // every stream is dry, so each job's per-step
                        // global combination always has all stagers
                        // participating.
                        let active = u64::from(!owned.is_empty());
                        let any = staging_comm
                            .allreduce(active, |a, b| a.max(b))
                            .map_err(|e| SmartError::Comm(e).at(me, steps))?;
                        if any == 0 {
                            break;
                        }
                        let parts: Vec<(usize, &[In])> =
                            owned.iter().map(|(o, d)| (*o, d.as_slice())).collect();
                        driver.step(&parts, Some(&mut staging_comm))?;
                        steps += 1;
                    }
                    let mut stats = driver.finish();
                    for rx in &rxs {
                        stats.transit_recv_busy += rx.stats().recv_busy;
                        stats.transit_bytes += rx.stats().bytes;
                    }
                    Ok(ServeStagerOutcome {
                        handles,
                        steps,
                        stats,
                        streams: rxs.into_iter().map(|rx| rx.stats().clone()).collect(),
                    })
                })
            })
            .collect();

        let producers: Vec<SmartResult<ProducerOutcome<R>>> = producer_handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();
        let mut stagers: Vec<SmartResult<ServeStagerOutcome>> = stager_handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();

        // Fold the simulation-side send time into each staging group's
        // stats once the producer threads have joined (mirrors the core
        // runner's accounting).
        for (s, stager) in stagers.iter_mut().enumerate() {
            if let Ok(stager) = stager {
                for p in topo.producers_of(s) {
                    // PANIC-FREE: producers_of yields world ranks < topo.producers = producers.len().
                    if let Ok(prod) = &producers[p] {
                        stager.stats.transit_send_busy += prod.stream.send_busy;
                    }
                }
            }
        }

        ServeOutcome { producers, stagers }
    })
}
