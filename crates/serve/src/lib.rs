//! # smart-serve
//!
//! The multi-tenant analytics **service tier** on top of the Smart
//! execution core. The paper runs exactly one analytics job per
//! simulation; production in-situ means many users querying the same live
//! stream concurrently. This crate makes a job a *submitted* value:
//!
//! * [`JobSpec`] wraps an [`smart_core::Analytics`] + [`SchedArgs`] with
//!   tenant, priority, deadline, and step-budget metadata.
//! * [`Registry`] is the admission gate: a registry-wide active-job cap
//!   (rejecting with [`SmartError::Busy`]) and a per-tenant token bucket
//!   ([`SmartError::QuotaExceeded`]) charged at submit and refilled once
//!   per processed time-step. Admission never queues unboundedly and never
//!   hangs — rejection is an immediate typed error.
//! * [`Registry::submit`] returns a [`JobHandle`]: poll or block on
//!   per-step [`JobEvent`]s, cancel, and observe failure as a typed
//!   [`SmartError`].
//! * [`ServeDriver`] fans each arriving time-step out to every admitted
//!   job over **one** staging pass (stage once via [`smart_core::stage`],
//!   run N reduce/combine phases against the same staged data), orders
//!   execution by strict priority with aging, and **coalesces** jobs that
//!   declare the same reduction ([`CoalesceKey`]) into a single execution
//!   demultiplexed through each subscriber's own `convert`.
//! * [`run_in_transit_serve`] turns the in-transit staging ranks into the
//!   service tier: producers stream each time-step once
//!   ([`smart_core::Producer`], unchanged), stagers serve many jobs per
//!   step.
//!
//! Per-job accounting flows through the [`smart_core::PhaseObserver`] job
//! dimension into [`smart_core::RunStats`] ([`smart_core::JobLane`]), and
//! per-tenant usage is tracked by the registry ([`TenantUsage`]).
//!
//! ## Scheduling semantics
//!
//! Every admitted job runs against every time-step the driver processes —
//! skipping a step would change the job's result, so quotas gate
//! *admission*, not per-step execution. Priority (+ aging) orders
//! execution *within* a step: under contention, high-priority jobs get
//! their results first, and aging guarantees no job is permanently last.
//! The ordering is deterministic (priority desc, then job id asc), which
//! is what keeps distributed serve drivers on different stagers executing
//! their global combinations in the same order — a distributed
//! [`ServeDriver::step`] requires every rank to have admitted the same job
//! sequence.
//!
//! ## Coalescing contract
//!
//! Jobs opt in with [`JobSpec::with_coalesce`]. Two jobs coalesce when
//! their [`CoalesceKey`]s are equal **and** their execution shapes are
//! compatible (same chunk size, iteration count, key mode, and reduction
//! object type). The key asserts that the jobs perform the same reduction
//! (same keys, same accumulate/merge); the runtime then executes the
//! group's *leader* once per step and derives every other member's output
//! by applying that member's own `convert` to the leader's combination
//! map — "same analytics + key space, different convert" costs one
//! reduction. Coalesced jobs share the group's reduction history (the
//! leader's combination map persists across steps), so submit group
//! members together if each must see the full stream. Early emission is
//! disabled for coalesced jobs: results must flow through the combination
//! map to be demultiplexable.

mod driver;
mod jobs;
mod registry;
mod transit;

pub use driver::ServeDriver;
pub use jobs::{CoalesceKey, JobEvent, JobHandle, JobSpec, JobStepResult};
pub use registry::{Registry, RegistryConfig, TenantQuota, TenantUsage};
pub use transit::{run_in_transit_serve, ServeOutcome, ServeStagerOutcome};

// Re-exports so service callers need only this crate for the common types.
pub use smart_core::{KeyMode, SchedArgs, SmartError, SmartResult};
