//! The admission gate: job registry, per-tenant token buckets, and usage
//! accounting.
//!
//! Admission is decided synchronously at [`Registry::submit`] — the
//! registry never queues beyond its capacity and never blocks the caller:
//! over-capacity submissions fail with [`SmartError::Busy`], over-quota
//! submissions with [`SmartError::QuotaExceeded`]. Token buckets are
//! deterministic: charged at submit, refilled once per *processed
//! time-step* by the driver (never by wall clock), so distributed serve
//! drivers that see the same submission sequence make identical admission
//! decisions.

use crate::driver::JobInit;
use crate::jobs::{CoalesceKey, JobEvent, JobHandle, JobSpec};
use smart_core::{KeyMode, SmartError, SmartResult};
use smart_sync::atomic::AtomicBool;
use smart_sync::channel::{self, Sender};
use smart_sync::{Arc, Mutex};
use std::collections::BTreeMap;
use std::time::Duration;

/// Registry-wide admission limits.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Maximum jobs admitted at once (pending + running). Submissions past
    /// this cap are rejected with [`SmartError::Busy`].
    pub max_active: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig { max_active: 64 }
    }
}

/// A tenant's token bucket: `burst` is the bucket capacity (and initial
/// fill), `refill_per_step` is added after every time-step the serve
/// driver processes. Each submission costs [`JobSpec::with_cost`] tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Bucket capacity and initial token count.
    pub burst: u32,
    /// Tokens restored per processed time-step (capped at `burst`).
    pub refill_per_step: u32,
    /// Default spilling-shuffle budget (bytes) inherited by the tenant's
    /// jobs that don't set [`crate::JobSpec::with_spill_budget`]. `None`
    /// leaves the tenant's jobs resident unless they opt in themselves.
    pub spill_budget: Option<usize>,
}

impl TenantQuota {
    /// A quota of `burst` tokens refilling at `refill_per_step`.
    pub fn new(burst: u32, refill_per_step: u32) -> Self {
        TenantQuota { burst, refill_per_step, spill_budget: None }
    }

    /// A quota that never rejects (for single-tenant deployments).
    pub fn unlimited() -> Self {
        TenantQuota { burst: u32::MAX, refill_per_step: u32::MAX, spill_budget: None }
    }

    /// Give the tenant's jobs a default spilling budget (bytes).
    pub fn with_spill_budget(mut self, bytes: usize) -> Self {
        self.spill_budget = Some(bytes);
        self
    }
}

/// Per-tenant accounting, updated by admission and by the serve driver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Jobs admitted.
    pub submitted: usize,
    /// Submissions rejected for insufficient tokens.
    pub rejected: usize,
    /// Jobs that completed normally.
    pub completed: usize,
    /// Jobs that failed, were cancelled, missed a deadline, or were
    /// detached (handle dropped).
    pub failed: usize,
    /// Job-steps executed across all of the tenant's jobs.
    pub steps: usize,
    /// Wire-serialized result bytes delivered to the tenant's handles.
    pub result_bytes: u64,
    /// Busy time spent executing the tenant's jobs (zero unless the driver
    /// collects stats).
    pub busy: Duration,
}

struct Tenant {
    quota: TenantQuota,
    tokens: u32,
    usage: TenantUsage,
}

/// A job admitted but not yet adopted by a driver.
pub(crate) struct PendingJob<In> {
    pub(crate) id: u64,
    pub(crate) tenant: String,
    pub(crate) priority: u8,
    pub(crate) deadline: Option<usize>,
    pub(crate) steps: Option<usize>,
    pub(crate) key_mode: KeyMode,
    pub(crate) coalesce: Option<CoalesceKey>,
    pub(crate) spill_budget: Option<usize>,
    pub(crate) mem_budget: Option<usize>,
    pub(crate) init: Box<dyn JobInit<In>>,
    pub(crate) tx: Sender<JobEvent>,
    pub(crate) cancel: Arc<AtomicBool>,
}

struct Inner<In> {
    config: RegistryConfig,
    tenants: BTreeMap<String, Tenant>,
    pending: Vec<PendingJob<In>>,
    next_id: u64,
    active: usize,
}

/// The job registry: cloneable, thread-safe handle shared between
/// submitters and the [`crate::ServeDriver`] that executes admitted jobs.
pub struct Registry<In> {
    inner: Arc<Mutex<Inner<In>>>,
}

impl<In> Clone for Registry<In> {
    fn clone(&self) -> Self {
        Registry { inner: Arc::clone(&self.inner) }
    }
}

impl<In: Send + 'static> Registry<In> {
    /// An empty registry with `config` limits and no tenants.
    pub fn new(config: RegistryConfig) -> Self {
        Registry {
            inner: Arc::new(Mutex::new(Inner {
                config,
                tenants: BTreeMap::new(),
                pending: Vec::new(),
                next_id: 0,
                active: 0,
            })),
        }
    }

    /// Register (or re-quota) a tenant. The bucket starts at `burst`.
    pub fn add_tenant(&self, name: &str, quota: TenantQuota) {
        let mut inner = self.inner.lock();
        inner.tenants.insert(
            name.to_string(),
            Tenant { quota, tokens: quota.burst, usage: TenantUsage::default() },
        );
    }

    /// Admit `spec` or reject it with a typed error — never blocks, never
    /// queues past capacity. On success the returned [`JobHandle`]
    /// receives one [`JobEvent::Step`] per processed time-step once a
    /// driver adopts the job.
    ///
    /// # Errors
    /// * [`SmartError::Busy`] — the registry is at `max_active` jobs.
    /// * [`SmartError::QuotaExceeded`] — the tenant's bucket cannot cover
    ///   the job's cost.
    /// * [`SmartError::BadArgs`] — the tenant was never registered.
    pub fn submit(&self, spec: JobSpec<In>) -> SmartResult<JobHandle> {
        let mut inner = self.inner.lock();
        if inner.active >= inner.config.max_active {
            return Err(SmartError::Busy { active: inner.active, cap: inner.config.max_active });
        }
        let tenant = inner.tenants.get_mut(&spec.tenant).ok_or_else(|| {
            SmartError::BadArgs(format!(
                "unknown tenant `{}`; register it with Registry::add_tenant",
                spec.tenant
            ))
        })?;
        if tenant.tokens < spec.cost {
            tenant.usage.rejected += 1;
            return Err(SmartError::QuotaExceeded {
                tenant: spec.tenant,
                needed: spec.cost,
                available: tenant.tokens,
            });
        }
        tenant.tokens -= spec.cost;
        tenant.usage.submitted += 1;
        // Per-job budgets win; otherwise the tenant's default applies.
        let spill_budget = spec.spill_budget.or(tenant.quota.spill_budget);
        let id = inner.next_id;
        inner.next_id += 1;
        inner.active += 1;
        let (tx, rx) = channel::unbounded();
        let cancel = Arc::new(AtomicBool::new(false));
        inner.pending.push(PendingJob {
            id,
            tenant: spec.tenant.clone(),
            priority: spec.priority,
            deadline: spec.deadline,
            steps: spec.steps,
            key_mode: spec.key_mode,
            coalesce: spec.coalesce,
            spill_budget,
            mem_budget: spec.mem_budget,
            init: spec.init,
            tx,
            cancel: Arc::clone(&cancel),
        });
        Ok(JobHandle { id, tenant: spec.tenant, rx, cancel })
    }

    /// Jobs currently admitted (pending + driver-held).
    pub fn active_jobs(&self) -> usize {
        self.inner.lock().active
    }

    /// The tenant's current token count, if registered.
    pub fn tokens(&self, tenant: &str) -> Option<u32> {
        self.inner.lock().tenants.get(tenant).map(|t| t.tokens)
    }

    /// A snapshot of the tenant's accounting, if registered.
    pub fn usage(&self, tenant: &str) -> Option<TenantUsage> {
        self.inner.lock().tenants.get(tenant).map(|t| t.usage.clone())
    }

    /// Registered tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.inner.lock().tenants.keys().cloned().collect()
    }

    /// Drain the pending queue into a driver.
    pub(crate) fn take_pending(&self) -> Vec<PendingJob<In>> {
        std::mem::take(&mut self.inner.lock().pending)
    }

    /// A job left the system (completed, failed, cancelled, or detached).
    pub(crate) fn retire(&self, tenant: &str, failed: bool) {
        let mut inner = self.inner.lock();
        inner.active = inner.active.saturating_sub(1);
        if let Some(t) = inner.tenants.get_mut(tenant) {
            if failed {
                t.usage.failed += 1;
            } else {
                t.usage.completed += 1;
            }
        }
    }

    /// Account one executed job-step for `tenant`.
    pub(crate) fn record_job_step(&self, tenant: &str, bytes: u64, busy: Duration) {
        let mut inner = self.inner.lock();
        if let Some(t) = inner.tenants.get_mut(tenant) {
            t.usage.steps += 1;
            t.usage.result_bytes += bytes;
            t.usage.busy += busy;
        }
    }

    /// Refill every tenant's bucket for one processed time-step.
    pub(crate) fn refill_step(&self) {
        let mut inner = self.inner.lock();
        for t in inner.tenants.values_mut() {
            t.tokens = t.tokens.saturating_add(t.quota.refill_per_step).min(t.quota.burst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobSpec;
    use smart_analytics::Histogram;
    use smart_core::SchedArgs;

    fn spec() -> JobSpec<f64> {
        JobSpec::new(Histogram::new(0.0, 1.0, 4), SchedArgs::new(1, 1), 4)
    }

    #[test]
    fn busy_rejection_names_the_cap() {
        let reg: Registry<f64> = Registry::new(RegistryConfig { max_active: 2 });
        reg.add_tenant("a", TenantQuota::unlimited());
        let _h1 = reg.submit(spec().with_tenant("a")).unwrap();
        let _h2 = reg.submit(spec().with_tenant("a")).unwrap();
        match reg.submit(spec().with_tenant("a")) {
            Err(SmartError::Busy { active: 2, cap: 2 }) => {}
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(reg.active_jobs(), 2);
    }

    #[test]
    fn quota_charges_and_rejects_deterministically() {
        let reg: Registry<f64> = Registry::new(RegistryConfig::default());
        reg.add_tenant("t", TenantQuota::new(3, 1));
        let _h = reg.submit(spec().with_tenant("t").with_cost(2)).unwrap();
        assert_eq!(reg.tokens("t"), Some(1));
        match reg.submit(spec().with_tenant("t").with_cost(2)) {
            Err(SmartError::QuotaExceeded { tenant, needed: 2, available: 1 }) => {
                assert_eq!(tenant, "t");
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // One step of refill covers the shortfall; the bucket caps at
        // burst.
        reg.refill_step();
        assert_eq!(reg.tokens("t"), Some(2));
        let _h2 = reg.submit(spec().with_tenant("t").with_cost(2)).unwrap();
        for _ in 0..10 {
            reg.refill_step();
        }
        assert_eq!(reg.tokens("t"), Some(3));
        let usage = reg.usage("t").unwrap();
        assert_eq!((usage.submitted, usage.rejected), (2, 1));
    }

    #[test]
    fn unknown_tenant_is_a_typed_error() {
        let reg: Registry<f64> = Registry::new(RegistryConfig::default());
        assert!(matches!(reg.submit(spec().with_tenant("ghost")), Err(SmartError::BadArgs(_))));
    }

    #[test]
    fn retire_frees_a_slot() {
        let reg: Registry<f64> = Registry::new(RegistryConfig { max_active: 1 });
        reg.add_tenant("a", TenantQuota::unlimited());
        let _h = reg.submit(spec().with_tenant("a")).unwrap();
        assert!(matches!(reg.submit(spec().with_tenant("a")), Err(SmartError::Busy { .. })));
        reg.retire("a", false);
        let _h2 = reg.submit(spec().with_tenant("a")).unwrap();
        assert_eq!(reg.usage("a").unwrap().completed, 1);
    }
}
