//! The serve driver: shared-scan fan-out of one time-step to every
//! admitted job.
//!
//! This is the **only** module in the crate allowed to construct a
//! [`Scheduler`] — every other path must go through admission
//! ([`crate::Registry::submit`]), which is what makes quotas and the
//! active-job cap mean anything. The `serve-admission` lint in
//! `cargo xtask lint` enforces this boundary textually.

use crate::jobs::{CoalesceKey, JobEvent, JobStepResult};
use crate::registry::Registry;
use serde::Serialize;
use smart_comm::Communicator;
use smart_core::stage;
use smart_core::{
    Analytics, Key, KeyMode, NoopObserver, PhaseObserver, RunStats, SchedArgs, Scheduler,
    SmartError, SmartResult, StepSpec,
};
use smart_pool::SharedPool;
use smart_sync::atomic::{AtomicBool, Ordering};
use smart_sync::channel::Sender;
use smart_sync::Arc;
use std::any::TypeId;
use std::time::{Duration, Instant};

/// One job's per-step product: serialized output, serialized canonical
/// combination map, and the busy time charged to the job.
type StepProduct = (Vec<u8>, Vec<u8>, Duration);

/// Builds the type-erased job state once a driver adopts a pending job.
/// Boxed inside [`crate::JobSpec`] so the registry stays generic over the
/// input element type only.
pub(crate) trait JobInit<In>: Send {
    /// Consume the spec's analytics + args and stand up the scheduler.
    fn build(
        self: Box<Self>,
        pool: SharedPool,
        key_mode: KeyMode,
        coalesced: bool,
        budgets: JobBudgets,
    ) -> SmartResult<Box<dyn ErasedJob<In>>>;
}

/// Admission-resolved memory policy handed to the job's scheduler: the
/// spilling budget (per-job setting or tenant default) and the hard
/// resident budget.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct JobBudgets {
    pub(crate) spill: Option<usize>,
    pub(crate) mem: Option<usize>,
}

/// The typed payload behind [`JobInit`]: what [`crate::JobSpec::new`]
/// captures.
pub(crate) struct TypedInit<A: Analytics> {
    pub(crate) analytics: A,
    pub(crate) args: SchedArgs<A::Extra>,
    pub(crate) out_len: usize,
}

impl<In, A> JobInit<In> for TypedInit<A>
where
    A: Analytics<In = In> + 'static,
    A::In: Clone,
    A::Out: Serialize + Default + Clone,
{
    fn build(
        self: Box<Self>,
        pool: SharedPool,
        key_mode: KeyMode,
        coalesced: bool,
        budgets: JobBudgets,
    ) -> SmartResult<Box<dyn ErasedJob<In>>> {
        let TypedInit { analytics, mut args, out_len } = *self;
        // The driver owns staging policy: jobs always reduce from the
        // shared staged view, never re-copy per job.
        args.copy_input = false;
        if coalesced {
            // A coalesced member's output is derived from the group
            // leader's combination map; early emission would bypass the
            // map and make the result un-demultiplexable.
            args.disable_trigger = true;
        }
        let out = vec![A::Out::default(); out_len];
        let mut sched = Scheduler::new(analytics, args, pool)?;
        if let Some(spill) = budgets.spill {
            sched.set_spill_budget(Some(spill))?;
        }
        if budgets.mem.is_some() {
            sched.set_mem_budget(budgets.mem);
        }
        Ok(Box::new(Typed { sched, key_mode, out }))
    }
}

/// Execution-shape fingerprint checked before two jobs coalesce: chunk
/// size, iteration count, key mode, and reduction-object type.
pub(crate) type Compat = (usize, usize, KeyMode, TypeId);

/// A running job with its analytics/output types erased, so the driver
/// can hold a heterogeneous fleet over one input element type.
pub(crate) trait ErasedJob<In> {
    fn chunk_size(&self) -> usize;
    fn compat(&self) -> Compat;
    fn steps_run(&self) -> usize;
    /// The combination map in canonical wire form (key-sorted entries).
    fn snapshot_map(&self) -> SmartResult<Vec<u8>>;
    /// Run one full reduce/combine step against the staged partitions.
    /// Returns `(out bytes, map bytes)` in canonical wire form.
    fn execute(
        &mut self,
        parts: &[(usize, &[In])],
        comm: Option<&mut Communicator>,
        obs: &mut dyn PhaseObserver,
    ) -> SmartResult<(Vec<u8>, Vec<u8>)>;
    /// Derive this job's output from a coalesced leader's map bytes by
    /// applying this job's own `convert`. Returns out bytes.
    fn view(&mut self, map_bytes: &[u8]) -> SmartResult<Vec<u8>>;
    /// Adopt a leader's reduction history on group-leader promotion.
    fn adopt(&mut self, map_bytes: &[u8], steps: usize) -> SmartResult<()>;
}

struct Typed<A: Analytics> {
    sched: Scheduler<A>,
    key_mode: KeyMode,
    // Persistent across steps: `convert` only overwrites slots covered by
    // live keys, so the buffer carries prior values forward exactly like a
    // long-lived caller buffer would under `Scheduler::execute`.
    out: Vec<A::Out>,
}

impl<In, A> ErasedJob<In> for Typed<A>
where
    A: Analytics<In = In> + 'static,
    A::In: Clone,
    A::Out: Serialize + Default + Clone,
{
    fn chunk_size(&self) -> usize {
        self.sched.args().chunk_size
    }

    fn compat(&self) -> Compat {
        (
            self.sched.args().chunk_size,
            self.sched.args().num_iters,
            self.key_mode,
            TypeId::of::<A::Red>(),
        )
    }

    fn steps_run(&self) -> usize {
        self.sched.steps_run()
    }

    fn snapshot_map(&self) -> SmartResult<Vec<u8>> {
        self.sched.canonical_map_bytes()
    }

    fn execute(
        &mut self,
        parts: &[(usize, &[In])],
        comm: Option<&mut Communicator>,
        obs: &mut dyn PhaseObserver,
    ) -> SmartResult<(Vec<u8>, Vec<u8>)> {
        let spec = StepSpec::new(parts).with_key_mode(self.key_mode).with_comm(comm);
        self.sched.execute_with(spec, &mut self.out, obs)?;
        let out = smart_wire::to_bytes(&self.out).map_err(|e| SmartError::Comm(e.into()))?;
        let map = self.snapshot_map()?;
        Ok((out, map))
    }

    fn view(&mut self, map_bytes: &[u8]) -> SmartResult<Vec<u8>> {
        if !self.out.is_empty() {
            let entries: Vec<(Key, A::Red)> =
                smart_wire::from_bytes(map_bytes).map_err(|e| SmartError::Comm(e.into()))?;
            let out_len = self.out.len();
            for (key, obj) in &entries {
                let idx = usize::try_from(*key)
                    .ok()
                    .filter(|&i| i < out_len)
                    .ok_or(SmartError::KeyOutOfRange { key: *key, out_len })?;
                // PANIC-FREE: idx was range-checked against out_len just above.
                self.sched.analytics().convert(obj, &mut self.out[idx]);
            }
        }
        smart_wire::to_bytes(&self.out).map_err(|e| SmartError::Comm(e.into()))
    }

    fn adopt(&mut self, map_bytes: &[u8], steps: usize) -> SmartResult<()> {
        let entries: Vec<(Key, A::Red)> =
            smart_wire::from_bytes(map_bytes).map_err(|e| SmartError::Comm(e.into()))?;
        self.sched.restore(entries, steps);
        Ok(())
    }
}

struct ActiveJob<In> {
    id: u64,
    tenant: String,
    priority: u8,
    age: u32,
    deadline: Option<usize>,
    budget: Option<usize>,
    steps_done: usize,
    coalesce: Option<CoalesceKey>,
    job: Box<dyn ErasedJob<In>>,
    tx: Sender<JobEvent>,
    cancel: Arc<AtomicBool>,
}

impl<In> ActiveJob<In> {
    /// Strict priority lifted by aging so the lowest-priority job still
    /// ratchets toward the front slot under sustained contention.
    fn eff_priority(&self) -> u64 {
        self.priority as u64 + self.age as u64
    }
}

/// What happened to a job within one [`ServeDriver::step`].
enum Fate {
    Running,
    Done,
    Failed(SmartError),
    /// Handle dropped: retire silently.
    Detached,
}

/// Fans each time-step out to every admitted job over one staging pass.
///
/// Feed it steps with [`step`](Self::step) (from a simulation loop or the
/// in-transit stagers via [`crate::run_in_transit_serve`]); it adopts
/// pending jobs from its [`Registry`] at each step boundary, executes
/// every live job against the same staged data, and delivers per-step
/// results to each job's [`crate::JobHandle`].
pub struct ServeDriver<In> {
    registry: Registry<In>,
    pool: SharedPool,
    copy_stage: bool,
    collect_stats: bool,
    jobs: Vec<ActiveJob<In>>,
    staging_buf: Vec<In>,
    step_idx: usize,
    stats: RunStats,
}

impl<In: Clone + Send + 'static> ServeDriver<In> {
    /// A driver adopting jobs from `registry`, executing on `pool`.
    /// Staging defaults to copy mode — the shared scan stages each step
    /// once and every job reduces from that buffer.
    pub fn new(registry: Registry<In>, pool: SharedPool) -> Self {
        ServeDriver {
            registry,
            pool,
            copy_stage: true,
            collect_stats: false,
            jobs: Vec::new(),
            staging_buf: Vec::new(),
            step_idx: 0,
            stats: RunStats::default(),
        }
    }

    /// Toggle the shared staging copy. Zero-copy (`false`) reduces every
    /// job straight from the caller's slices — correct, but each job walks
    /// the simulation's live buffers instead of one service-owned copy.
    pub fn with_copy_stage(mut self, copy: bool) -> Self {
        self.copy_stage = copy;
        self
    }

    /// Enable per-step timing and byte accounting into [`stats`](Self::stats).
    pub fn set_collect_stats(&mut self, collect: bool) {
        self.collect_stats = collect;
    }

    /// Accumulated statistics: staged bytes (once per step, independent of
    /// job count), per-job lanes, and absorbed scheduler phase timings.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Jobs currently held by this driver (admitted and not yet retired).
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Time-steps processed so far.
    pub fn steps_run(&self) -> usize {
        self.step_idx
    }

    /// The registry this driver adopts jobs from.
    pub fn registry(&self) -> &Registry<In> {
        &self.registry
    }

    /// Process one simulation time-step: adopt pending jobs, sweep
    /// cancellations and deadlines, stage the step **once**, execute every
    /// live job (priority + aging order, coalesced groups once), deliver
    /// results, retire finished jobs, refill quota buckets.
    ///
    /// With `comm`, global combination runs per job in deterministic order
    /// — every rank of a distributed serve deployment must drive an
    /// identical job sequence.
    // PANIC-FREE: fate/results/order are built with one element per entry of self.jobs at the top
    // of the step, jobs are not added or removed until the retire sweep after the last index, and
    // every index (including coalesce-group members) is drawn from 0..jobs.len() permutations.
    pub fn step(
        &mut self,
        parts: &[(usize, &[In])],
        mut comm: Option<&mut Communicator>,
    ) -> SmartResult<()> {
        // (1) Adopt pending jobs. A failed build is that job's failure,
        // not the step's.
        for pending in self.registry.take_pending() {
            let coalesced = pending.coalesce.is_some();
            let budgets = JobBudgets { spill: pending.spill_budget, mem: pending.mem_budget };
            match pending.init.build(self.pool.clone(), pending.key_mode, coalesced, budgets) {
                Ok(job) => self.jobs.push(ActiveJob {
                    id: pending.id,
                    tenant: pending.tenant,
                    priority: pending.priority,
                    age: 0,
                    deadline: pending.deadline,
                    budget: pending.steps,
                    steps_done: 0,
                    coalesce: pending.coalesce,
                    job,
                    tx: pending.tx,
                    cancel: pending.cancel,
                }),
                Err(e) => {
                    let _ = pending.tx.send(JobEvent::Failed(e));
                    self.registry.retire(&pending.tenant, true);
                }
            }
        }

        let mut fate: Vec<Fate> = Vec::with_capacity(self.jobs.len());
        for j in &self.jobs {
            if j.cancel.load(Ordering::Acquire) {
                fate.push(Fate::Failed(SmartError::Cancelled { job: j.id }));
            } else if j.deadline.is_some_and(|d| self.step_idx >= d) {
                fate.push(Fate::Failed(SmartError::DeadlineExceeded {
                    job: j.id,
                    deadline: j.deadline.unwrap_or(0),
                }));
            } else if stage::validate(parts, j.job.chunk_size()).is_err() {
                fate.push(Fate::Failed(SmartError::BadArgs(format!(
                    "step partitions are not aligned to job {}'s chunk size {}",
                    j.id,
                    j.job.chunk_size()
                ))));
            } else {
                fate.push(Fate::Running);
            }
        }

        // (2) Shared scan: stage the step once for every live job.
        let any_running = fate.iter().any(|f| matches!(f, Fate::Running));
        let mut buf = std::mem::take(&mut self.staging_buf);
        {
            let t0 = self.collect_stats.then(Instant::now);
            let staged = if self.copy_stage && any_running {
                stage::stage(true, &mut buf, parts)
            } else {
                None
            };
            if let (Some(t0), Some(staged)) = (t0, &staged) {
                let elems: usize = staged.iter().map(|(_, p)| p.len()).sum();
                self.stats.staged_done((elems * std::mem::size_of::<In>()) as u64, t0.elapsed());
            }
            let parts: &[(usize, &[In])] = staged.as_deref().unwrap_or(parts);

            // (3) Execute in priority + aging order; ties break to the
            // lower job id for cross-rank determinism.
            let mut order: Vec<usize> = (0..self.jobs.len()).collect();
            order.sort_by(|&a, &b| {
                self.jobs[b]
                    .eff_priority()
                    .cmp(&self.jobs[a].eff_priority())
                    .then(self.jobs[a].id.cmp(&self.jobs[b].id))
            });

            let mut results: Vec<Option<StepProduct>> =
                (0..self.jobs.len()).map(|_| None).collect();
            for pos in 0..order.len() {
                let i = order[pos];
                if !matches!(fate[i], Fate::Running) || results[i].is_some() {
                    continue;
                }
                // Coalesce group: every later Running job with the same
                // key and a compatible execution shape rides this leader.
                let mut group = vec![i];
                if let Some(key) = self.jobs[i].coalesce.clone() {
                    let compat = self.jobs[i].job.compat();
                    for &j in order.iter().skip(pos + 1) {
                        if matches!(fate[j], Fate::Running)
                            && results[j].is_none()
                            && self.jobs[j].coalesce.as_ref() == Some(&key)
                            && self.jobs[j].job.compat() == compat
                        {
                            group.push(j);
                        }
                    }
                    // The leader is the group's oldest member: it carries
                    // the group's accumulated reduction history.
                    group.sort_by_key(|&j| self.jobs[j].id);
                }
                let leader = group[0];
                let t0 = self.collect_stats.then(Instant::now);
                let exec = if self.collect_stats {
                    let mut step_stats = RunStats::default();
                    let r =
                        self.jobs[leader].job.execute(parts, comm.as_deref_mut(), &mut step_stats);
                    self.stats.absorb(&step_stats);
                    r
                } else {
                    self.jobs[leader].job.execute(parts, comm.as_deref_mut(), &mut NoopObserver)
                };
                let busy = t0.map(|t| t.elapsed()).unwrap_or_default();
                match exec {
                    Ok((out, map)) => {
                        for &m in group.iter().skip(1) {
                            let t1 = self.collect_stats.then(Instant::now);
                            match self.jobs[m].job.view(&map) {
                                Ok(member_out) => {
                                    let view_busy = t1.map(|t| t.elapsed()).unwrap_or_default();
                                    results[m] = Some((member_out, map.clone(), view_busy));
                                }
                                Err(e) => fate[m] = Fate::Failed(e),
                            }
                        }
                        results[leader] = Some((out, map, busy));
                    }
                    Err(e) => {
                        let id = self.jobs[leader].id;
                        for &m in group.iter().skip(1) {
                            fate[m] = Fate::Failed(SmartError::BadArgs(format!(
                                "coalesced leader job {id} failed: {e}"
                            )));
                        }
                        fate[leader] = Fate::Failed(e);
                    }
                }
            }

            // (4) Deliver results; account per job and per tenant.
            for (i, result) in results.into_iter().enumerate() {
                let Some((out, map, busy)) = result else { continue };
                let j = &mut self.jobs[i];
                let bytes = (out.len() + map.len()) as u64;
                let sent =
                    j.tx.send(JobEvent::Step(JobStepResult { step: self.step_idx, out, map }))
                        .is_ok();
                if !sent {
                    fate[i] = Fate::Detached;
                    continue;
                }
                j.steps_done += 1;
                if self.collect_stats {
                    self.stats.job_step_done(j.id, bytes, busy);
                }
                self.registry.record_job_step(&j.tenant, bytes, busy);
                if j.budget == Some(j.steps_done) {
                    fate[i] = Fate::Done;
                }
            }

            // (5) Aging: the job that ran first this step resets; every
            // other runner moves one step closer to the front.
            let mut first = true;
            for &i in &order {
                if !matches!(fate[i], Fate::Running | Fate::Done) {
                    continue;
                }
                let j = &mut self.jobs[i];
                if first {
                    j.age = 0;
                    first = false;
                } else {
                    j.age = j.age.saturating_add(1);
                }
            }
        }
        buf.clear();
        self.staging_buf = buf;

        // (6) Leader promotion: when a coalesce-group leader retires, hand
        // its reduction history to the lowest-id survivor so the group's
        // accumulated map lives on.
        let mut promotions: Vec<(usize, usize)> = Vec::new();
        for i in 0..self.jobs.len() {
            if matches!(fate[i], Fate::Running) {
                continue;
            }
            let Some(key) = self.jobs[i].coalesce.clone() else { continue };
            let compat = self.jobs[i].job.compat();
            let same_group = |j: usize| {
                self.jobs[j].coalesce.as_ref() == Some(&key) && self.jobs[j].job.compat() == compat
            };
            let is_leader =
                (0..self.jobs.len()).filter(|&j| same_group(j)).min_by_key(|&j| self.jobs[j].id)
                    == Some(i);
            if !is_leader {
                continue;
            }
            let heir = (0..self.jobs.len())
                .filter(|&j| j != i && matches!(fate[j], Fate::Running) && same_group(j))
                .min_by_key(|&j| self.jobs[j].id);
            if let Some(h) = heir {
                promotions.push((i, h));
            }
        }
        for (from, to) in promotions {
            let hand_off = self.jobs[from].job.snapshot_map().and_then(|map| {
                let steps = self.jobs[from].job.steps_run();
                self.jobs[to].job.adopt(&map, steps)
            });
            if let Err(e) = hand_off {
                fate[to] = Fate::Failed(e);
            }
        }

        // (7) Retire: dropping an ActiveJob drops its Scheduler, which
        // withdraws the retained-map gauge — no shells leak past this
        // point.
        let mut kept = Vec::with_capacity(self.jobs.len());
        for (j, f) in self.jobs.drain(..).zip(fate) {
            match f {
                Fate::Running => kept.push(j),
                Fate::Done => {
                    let _ = j.tx.send(JobEvent::Done { steps: j.steps_done });
                    self.registry.retire(&j.tenant, false);
                }
                Fate::Failed(e) => {
                    let _ = j.tx.send(JobEvent::Failed(e));
                    self.registry.retire(&j.tenant, true);
                }
                Fate::Detached => {
                    self.registry.retire(&j.tenant, true);
                }
            }
        }
        self.jobs = kept;

        self.registry.refill_step();
        self.step_idx += 1;
        Ok(())
    }

    /// End of stream: complete every live job with [`JobEvent::Done`] and
    /// return the accumulated statistics.
    pub fn finish(mut self) -> RunStats {
        for j in self.jobs.drain(..) {
            let _ = j.tx.send(JobEvent::Done { steps: j.steps_done });
            self.registry.retire(&j.tenant, false);
        }
        std::mem::take(&mut self.stats)
    }
}
