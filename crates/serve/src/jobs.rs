//! Submitted jobs: specs, handles, and per-step events.

use crate::driver::{JobInit, TypedInit};
use serde::Serialize;
use smart_core::{Analytics, KeyMode, SchedArgs, SmartError, SmartResult};
use smart_sync::atomic::{AtomicBool, Ordering};
use smart_sync::channel::Receiver;
use smart_sync::Arc;
use std::time::Duration;

/// Opt-in coalescing identity: two submitted jobs that declare equal keys
/// assert they perform the *same reduction* — same `gen_key`/`gen_keys`,
/// same `accumulate`, same `merge`, same extra data — and may differ only
/// in `convert`. `analytics` names the analytics kind (e.g. `"histogram"`),
/// `params` encodes every parameter that shapes the reduction (bin edges,
/// centroid seed, window size…). The runtime additionally verifies the
/// execution shape (chunk size, iterations, key mode, reduction-object
/// type) before coalescing; the semantic half of the contract is the
/// caller's.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CoalesceKey {
    /// Analytics kind identifier.
    pub analytics: String,
    /// Reduction-shaping parameters, serialized however the caller likes —
    /// compared only for equality.
    pub params: String,
}

impl CoalesceKey {
    /// A coalescing key from its two components.
    pub fn new(analytics: &str, params: &str) -> Self {
        CoalesceKey { analytics: analytics.to_string(), params: params.to_string() }
    }
}

/// One submitted analytics job: an [`Analytics`] + [`SchedArgs`] pair
/// wrapped with tenancy, priority, deadline, and budget metadata. Built
/// with [`JobSpec::new`] and the `with_*` builders, consumed by
/// [`crate::Registry::submit`].
pub struct JobSpec<In> {
    pub(crate) tenant: String,
    pub(crate) priority: u8,
    pub(crate) deadline: Option<usize>,
    pub(crate) steps: Option<usize>,
    pub(crate) cost: u32,
    pub(crate) key_mode: KeyMode,
    pub(crate) coalesce: Option<CoalesceKey>,
    pub(crate) spill_budget: Option<usize>,
    pub(crate) mem_budget: Option<usize>,
    pub(crate) init: Box<dyn JobInit<In>>,
}

impl<In: Send + Sync + 'static> JobSpec<In> {
    /// A job running `analytics` with `args`, producing `out_len` output
    /// slots per step. Defaults: tenant `"default"`, priority 0, no
    /// deadline, unbounded step budget, cost 1 token,
    /// [`KeyMode::Single`], no coalescing.
    pub fn new<A>(analytics: A, args: SchedArgs<A::Extra>, out_len: usize) -> Self
    where
        A: Analytics<In = In> + 'static,
        A::In: Clone,
        A::Out: Serialize + Default + Clone,
    {
        JobSpec {
            tenant: "default".to_string(),
            priority: 0,
            deadline: None,
            steps: None,
            cost: 1,
            key_mode: KeyMode::Single,
            coalesce: None,
            spill_budget: None,
            mem_budget: None,
            init: Box::new(TypedInit { analytics, args, out_len }),
        }
    }

    /// Submit under `tenant` (must be registered with
    /// [`crate::Registry::add_tenant`]).
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        self.tenant = tenant.to_string();
        self
    }

    /// Execution priority within each step (higher runs earlier; ties go
    /// to the lower job id). Aging prevents starvation of the front slot.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Absolute driver step index by which the job must have completed; a
    /// job still active when the driver reaches this step is retired with
    /// [`SmartError::DeadlineExceeded`].
    pub fn with_deadline(mut self, step: usize) -> Self {
        self.deadline = Some(step);
        self
    }

    /// Step budget: the job completes (with [`JobEvent::Done`]) after
    /// processing this many time-steps.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = Some(steps);
        self
    }

    /// Tokens charged against the tenant's bucket at submission (default
    /// 1).
    pub fn with_cost(mut self, tokens: u32) -> Self {
        self.cost = tokens;
        self
    }

    /// Key mode for every step this job runs (default
    /// [`KeyMode::Single`]).
    pub fn with_key_mode(mut self, key_mode: KeyMode) -> Self {
        self.key_mode = key_mode;
        self
    }

    /// Declare this job coalescible under `key` (see the crate-level
    /// coalescing contract). Implies early emission is disabled for this
    /// job.
    pub fn with_coalesce(mut self, key: CoalesceKey) -> Self {
        self.coalesce = Some(key);
        self
    }

    /// Spilling-shuffle budget in bytes for this job's scheduler (see
    /// [`smart_core::Scheduler::set_spill_budget`]). When unset, the job
    /// inherits its tenant's
    /// [`TenantQuota::spill_budget`](crate::TenantQuota) at admission.
    pub fn with_spill_budget(mut self, bytes: usize) -> Self {
        self.spill_budget = Some(bytes);
        self
    }

    /// Hard resident-memory budget in bytes for this job's reduction
    /// state: exceeding it with spilling disengaged fails the job's step
    /// with [`SmartError::MemBudget`](smart_core::SmartError).
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget = Some(bytes);
        self
    }
}

/// One step's results for one job, in canonical wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStepResult {
    /// The driver step index this result belongs to.
    pub step: usize,
    /// `smart_wire` bytes of the job's output buffer after conversion.
    pub out: Vec<u8>,
    /// `smart_wire` bytes of the job's combination map in key-sorted
    /// order — the bit-comparison form shared with the core test suites.
    pub map: Vec<u8>,
}

/// Lifecycle events delivered to a [`JobHandle`]. Terminal events
/// (`Done`/`Failed`) are sent exactly once; no events follow them.
#[derive(Debug)]
pub enum JobEvent {
    /// The job processed one time-step.
    Step(JobStepResult),
    /// The job completed (step budget reached, or the driver finished).
    Done {
        /// Time-steps the job processed over its lifetime.
        steps: usize,
    },
    /// The job failed or was cancelled; no further events follow.
    Failed(SmartError),
}

/// The subscriber's side of a submitted job: poll or block on per-step
/// [`JobEvent`]s, or cancel. Dropping the handle detaches the job — the
/// driver retires it at the next step without sending further events.
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) tenant: String,
    pub(crate) rx: Receiver<JobEvent>,
    pub(crate) cancel: Arc<AtomicBool>,
}

impl JobHandle {
    /// The registry-assigned job id (monotonically increasing per
    /// registry).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant this job was admitted under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Request cancellation: the driver retires the job (with
    /// [`SmartError::Cancelled`]) before executing its next step.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// The next event, if one is ready (never blocks).
    pub fn try_event(&self) -> Option<JobEvent> {
        self.rx.try_recv().ok()
    }

    /// Block until the next event; `None` once the job is retired and
    /// drained.
    pub fn recv_event(&self) -> Option<JobEvent> {
        self.rx.recv().ok()
    }

    /// Block up to `timeout` for the next event.
    pub fn recv_event_timeout(&self, timeout: Duration) -> Option<JobEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drain the job to completion: collect every per-step result, then
    /// return them on [`JobEvent::Done`] or surface the failure from
    /// [`JobEvent::Failed`]. A driver dropped without finishing surfaces
    /// as [`SmartError::StreamClosed`].
    pub fn join(self) -> SmartResult<Vec<JobStepResult>> {
        let mut steps = Vec::new();
        loop {
            match self.rx.recv() {
                Ok(JobEvent::Step(r)) => steps.push(r),
                Ok(JobEvent::Done { .. }) => return Ok(steps),
                Ok(JobEvent::Failed(e)) => return Err(e),
                Err(_) => return Err(SmartError::StreamClosed),
            }
        }
    }
}
