//! # smart-baseline
//!
//! The non-Smart comparators of the paper's evaluation:
//!
//! * [`lowlevel`] — analytics hand-written directly against the thread pool
//!   and communicator, the way an MPI+OpenMP programmer would (contiguous
//!   arrays, one `allreduce` per iteration). Fig. 6 compares Smart against
//!   these; §5.3's programmability claim counts the parallelization code
//!   they contain and Smart eliminates.
//! * [`offline`] — the store-first-analyze-after pipeline of the Fig. 1
//!   case study: every time-step is written to disk, then read back and
//!   analyzed after the simulation completes.
//!
//! The remaining two baselines of the paper need no code here because they
//! are configuration switches on the Smart runtime itself:
//! `SchedArgs::with_copy_input(true)` (Fig. 9) and
//! `SchedArgs::with_trigger_disabled(true)` (Fig. 11).

pub mod lowlevel;
pub mod offline;

pub use lowlevel::{lowlevel_kmeans, lowlevel_logistic};
pub use offline::OfflineStore;
