//! Hand-written "MPI + OpenMP" analytics (paper §5.3).
//!
//! These are the low-level implementations Fig. 6 compares Smart against:
//! every parallelization detail — data partitioning across threads, private
//! partial buffers, the thread merge, the contiguous-array `MPI_Allreduce`
//! — is written by hand. Note what Smart's sequential view hides: all of
//! the code in this module *except* the innermost arithmetic is
//! parallelization boilerplate (the §5.3 lines-of-code claim; see
//! `smart-bench loc`).
//!
//! Their one structural advantage over Smart, which the paper measures as
//! Smart's ≤9% overhead: the synchronized state lives in one contiguous
//! `Vec<f64>`, so global combination is a single `allreduce_sum_f64` with
//! no per-object serialization.

use smart_comm::{CommResult, Communicator};
use smart_pool::{split_range, ThreadPool};

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Hand-parallelized Lloyd's k-means.
///
/// `points` is this rank's flat partition; `init` is `k × dims` flattened.
/// Pass `None` for `comm` on single-node runs. Returns the centroids.
#[allow(clippy::too_many_arguments)] // hand-written MPI code passes everything explicitly — that is the point
pub fn lowlevel_kmeans(
    pool: &ThreadPool,
    mut comm: Option<&mut Communicator>,
    points: &[f64],
    dims: usize,
    k: usize,
    init: &[f64],
    iters: usize,
    num_threads: usize,
) -> CommResult<Vec<f64>> {
    assert!(dims > 0 && k > 0 && num_threads > 0);
    assert_eq!(init.len(), k * dims, "init must be k*dims");
    assert_eq!(points.len() % dims, 0, "points must be whole");

    let mut centroids = init.to_vec();
    // Contiguous synchronization buffer: k*dims sums then k sizes.
    let mut sync_buf = vec![0.0f64; k * dims + k];

    for _ in 0..iters {
        // --- parallel region: per-thread partial sums -------------------
        let cents = &centroids;
        let partials: Vec<Vec<f64>> = pool.run_on_workers(num_threads, |tid| {
            let range = split_range(points.len(), num_threads, tid, dims);
            let mut local = vec![0.0f64; k * dims + k];
            for p in points[range].chunks_exact(dims) {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for j in 0..k {
                    let c = &cents[j * dims..(j + 1) * dims];
                    let d: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                    if d < best_d {
                        best_d = d;
                        best = j;
                    }
                }
                for (s, x) in local[best * dims..(best + 1) * dims].iter_mut().zip(p) {
                    *s += x;
                }
                local[k * dims + best] += 1.0;
            }
            local
        });

        // --- manual thread merge ----------------------------------------
        sync_buf.iter_mut().for_each(|v| *v = 0.0);
        for part in &partials {
            for (s, p) in sync_buf.iter_mut().zip(part) {
                *s += p;
            }
        }

        // --- single contiguous allreduce (the MPI_Allreduce call) --------
        if let Some(comm) = comm.as_deref_mut() {
            comm.allreduce_sum_f64(&mut sync_buf)?;
        }

        // --- centroid update ---------------------------------------------
        for j in 0..k {
            let n = sync_buf[k * dims + j];
            if n > 0.0 {
                for d in 0..dims {
                    centroids[j * dims + d] = sync_buf[j * dims + d] / n;
                }
            }
        }
    }
    Ok(centroids)
}

/// Hand-parallelized batch-gradient logistic regression.
///
/// `records` are `dims + 1` doubles each (features, label). Returns the
/// learned weights.
pub fn lowlevel_logistic(
    pool: &ThreadPool,
    mut comm: Option<&mut Communicator>,
    records: &[f64],
    dims: usize,
    learning_rate: f64,
    iters: usize,
    num_threads: usize,
) -> CommResult<Vec<f64>> {
    assert!(dims > 0 && num_threads > 0 && learning_rate > 0.0);
    let rec = dims + 1;
    assert_eq!(records.len() % rec, 0, "records must be whole");

    let mut weights = vec![0.0f64; dims];
    // Contiguous synchronization buffer: gradient then count.
    let mut sync_buf = vec![0.0f64; dims + 1];

    for _ in 0..iters {
        let w = &weights;
        let partials: Vec<Vec<f64>> = pool.run_on_workers(num_threads, |tid| {
            let range = split_range(records.len(), num_threads, tid, rec);
            let mut local = vec![0.0f64; dims + 1];
            for r in records[range].chunks_exact(rec) {
                let dot: f64 = r[..dims].iter().zip(w).map(|(x, wi)| x * wi).sum();
                let err = sigmoid(dot) - r[dims];
                for (g, x) in local[..dims].iter_mut().zip(&r[..dims]) {
                    *g += err * x;
                }
                local[dims] += 1.0;
            }
            local
        });

        sync_buf.iter_mut().for_each(|v| *v = 0.0);
        for part in &partials {
            for (s, p) in sync_buf.iter_mut().zip(part) {
                *s += p;
            }
        }

        if let Some(comm) = comm.as_deref_mut() {
            comm.allreduce_sum_f64(&mut sync_buf)?;
        }

        let count = sync_buf[dims];
        if count > 0.0 {
            for (wi, g) in weights.iter_mut().zip(&sync_buf[..dims]) {
                *wi -= learning_rate / count * g;
            }
        }
    }
    Ok(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_core::{SchedArgs, Scheduler};

    #[test]
    fn lowlevel_kmeans_matches_smart_kmeans() {
        let mut emu = smart_sim::ClusteredEmulator::new(3, 3, 2, 0.7);
        let pts = emu.step(400);
        let init: Vec<f64> = pts[..3 * 2].to_vec();
        let pool = ThreadPool::new(4).unwrap();

        let low = lowlevel_kmeans(&pool, None, &pts, 2, 3, &init, 8, 4).unwrap();

        let app = smart_analytics::KMeans::new(3, 2);
        let args = SchedArgs::new(4, 2).with_extra(init.clone()).with_iters(8);
        let shared = smart_pool::shared_pool(4).unwrap();
        let mut s = Scheduler::new(app, args, shared).unwrap();
        let mut out = vec![Vec::new(); 3];
        s.run(&pts, &mut out).unwrap();

        for (j, smart_c) in out.iter().enumerate() {
            for (d, v) in smart_c.iter().enumerate() {
                assert!((v - low[j * 2 + d]).abs() < 1e-8, "cluster {j} dim {d}");
            }
        }
    }

    #[test]
    fn lowlevel_logistic_matches_smart_logistic() {
        let mut emu = smart_sim::LabeledEmulator::new(17, 6);
        let recs = emu.step(300);
        let pool = ThreadPool::new(4).unwrap();

        let low = lowlevel_logistic(&pool, None, &recs, 6, 1.0, 10, 4).unwrap();

        let app = smart_analytics::LogisticRegression::new(6, 1.0);
        let args = SchedArgs::new(4, 7).with_extra(vec![0.0; 6]).with_iters(10);
        let shared = smart_pool::shared_pool(4).unwrap();
        let mut s = Scheduler::new(app, args, shared).unwrap();
        let mut out = vec![Vec::new()];
        s.run(&recs, &mut out).unwrap();

        for (a, b) in out[0].iter().zip(&low) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn distributed_lowlevel_matches_local() {
        let mut emu = smart_sim::ClusteredEmulator::new(23, 2, 3, 1.0);
        let pts = emu.step(600);
        let init: Vec<f64> = pts[..2 * 3].to_vec();
        let pool = ThreadPool::new(2).unwrap();
        let reference = lowlevel_kmeans(&pool, None, &pts, 3, 2, &init, 5, 2).unwrap();

        let results = smart_comm::run_cluster(3, |mut comm| {
            let pool = ThreadPool::new(2).unwrap();
            let per = (pts.len() / 3 / comm.size()) * 3;
            let lo = comm.rank() * per;
            let hi = if comm.rank() + 1 == comm.size() { pts.len() } else { lo + per };
            lowlevel_kmeans(&pool, Some(&mut comm), &pts[lo..hi], 3, 2, &init, 5, 2).unwrap()
        });
        for r in &results {
            for (a, b) in r.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn empty_input_keeps_initial_state() {
        let pool = ThreadPool::new(1).unwrap();
        let c = lowlevel_kmeans(&pool, None, &[], 2, 2, &[0.0, 0.0, 1.0, 1.0], 3, 1).unwrap();
        assert_eq!(c, vec![0.0, 0.0, 1.0, 1.0]);
        let w = lowlevel_logistic(&pool, None, &[], 2, 0.5, 3, 1).unwrap();
        assert_eq!(w, vec![0.0, 0.0]);
    }
}
