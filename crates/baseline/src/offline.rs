//! The offline (store-first-analyze-after) pipeline of the Fig. 1 case
//! study: simulation output is written to persistent storage per time-step,
//! then read back for analysis after the simulation finishes — paying the
//! I/O cost in-situ processing avoids.

use bytes::{Buf, BufMut, BytesMut};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// On-disk store of per-rank, per-step `f64` partitions.
///
/// Layout: one file per (rank, step), little-endian, with an 8-byte element
/// count header — a minimal stand-in for the parallel file system the
/// paper's offline baseline writes through.
#[derive(Debug)]
pub struct OfflineStore {
    dir: PathBuf,
}

impl OfflineStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        // lint:allow(no-fs-writes): the offline baseline *is* the file I/O cost being measured
        fs::create_dir_all(&dir)?;
        Ok(OfflineStore { dir })
    }

    /// A store in a fresh subdirectory of the system temp dir.
    pub fn temp(label: &str) -> io::Result<Self> {
        let dir =
            std::env::temp_dir().join(format!("smart-offline-{label}-{}", std::process::id()));
        Self::new(dir)
    }

    /// Root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, rank: usize, step: usize) -> PathBuf {
        self.dir.join(format!("rank{rank:04}-step{step:06}.bin"))
    }

    /// Write one time-step's partition.
    pub fn write_step(&self, rank: usize, step: usize, data: &[f64]) -> io::Result<()> {
        let mut buf = BytesMut::with_capacity(8 + data.len() * 8);
        buf.put_u64_le(data.len() as u64);
        for &v in data {
            buf.put_f64_le(v);
        }
        // lint:allow(no-fs-writes): the offline baseline *is* the file I/O cost being measured
        let mut file = BufWriter::new(File::create(self.path(rank, step))?);
        file.write_all(&buf)?;
        file.flush()
    }

    /// Read one time-step's partition back.
    pub fn read_step(&self, rank: usize, step: usize) -> io::Result<Vec<f64>> {
        let mut file = BufReader::new(File::open(self.path(rank, step))?);
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut buf = &raw[..];
        if buf.len() < 8 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "missing header"));
        }
        let n = buf.get_u64_le() as usize;
        if buf.len() != n * 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected {n} elements, found {} bytes", buf.len()),
            ));
        }
        Ok((0..n).map(|_| buf.get_f64_le()).collect())
    }

    /// Total bytes currently stored (the paper's storage-cost axis).
    pub fn stored_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for entry in fs::read_dir(&self.dir)? {
            total += entry?.metadata()?.len();
        }
        Ok(total)
    }

    /// Delete the store and its contents.
    pub fn destroy(self) -> io::Result<()> {
        // lint:allow(no-fs-writes): cleanup of the baseline's own scratch directory
        fs::remove_dir_all(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let store = OfflineStore::temp("roundtrip").unwrap();
        let data: Vec<f64> = (0..1000).map(|i| i as f64 * 0.25).collect();
        store.write_step(0, 0, &data).unwrap();
        assert_eq!(store.read_step(0, 0).unwrap(), data);
        store.destroy().unwrap();
    }

    #[test]
    fn steps_and_ranks_are_separate_files() {
        let store = OfflineStore::temp("multi").unwrap();
        for rank in 0..3 {
            for step in 0..4 {
                store.write_step(rank, step, &[rank as f64, step as f64]).unwrap();
            }
        }
        assert_eq!(store.read_step(2, 3).unwrap(), vec![2.0, 3.0]);
        assert_eq!(store.read_step(0, 0).unwrap(), vec![0.0, 0.0]);
        let bytes = store.stored_bytes().unwrap();
        assert_eq!(bytes, 12 * (8 + 16));
        store.destroy().unwrap();
    }

    #[test]
    fn empty_partition_roundtrips() {
        let store = OfflineStore::temp("empty").unwrap();
        store.write_step(0, 0, &[]).unwrap();
        assert!(store.read_step(0, 0).unwrap().is_empty());
        store.destroy().unwrap();
    }

    #[test]
    fn missing_step_is_an_error() {
        let store = OfflineStore::temp("missing").unwrap();
        assert!(store.read_step(9, 9).is_err());
        store.destroy().unwrap();
    }

    #[test]
    fn truncated_file_is_detected() {
        let store = OfflineStore::temp("trunc").unwrap();
        store.write_step(0, 0, &[1.0, 2.0, 3.0]).unwrap();
        // Corrupt: truncate the file mid-payload.
        let path = store.dir().join("rank0000-step000000.bin");
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 4]).unwrap();
        assert!(store.read_step(0, 0).is_err());
        store.destroy().unwrap();
    }

    #[test]
    fn offline_pipeline_reproduces_in_situ_result() {
        // Simulate 5 steps, write each; then read back and run the same
        // Smart analytics. Results must equal the in-situ run — the paper's
        // point that only the cost differs, not the answer.
        use smart_core::{SchedArgs, Scheduler};

        let store = OfflineStore::temp("pipeline").unwrap();
        let mut sim = smart_sim::Heat3D::serial(8, 8, 8, 0.1);

        // In-situ: analyze while simulating.
        let app = smart_analytics::Histogram::new(0.0, 100.0, 16);
        let pool = smart_pool::shared_pool(2).unwrap();
        let mut insitu = Scheduler::new(app, SchedArgs::new(2, 1), pool).unwrap();
        let mut insitu_out = vec![0u64; 16];
        for step in 0..5 {
            let out = sim.step_serial();
            insitu.run(out, &mut insitu_out).unwrap();
            store.write_step(0, step, out).unwrap();
        }

        // Offline: read back and analyze.
        let app = smart_analytics::Histogram::new(0.0, 100.0, 16);
        let pool = smart_pool::shared_pool(2).unwrap();
        let mut offline = Scheduler::new(app, SchedArgs::new(2, 1), pool).unwrap();
        let mut offline_out = vec![0u64; 16];
        for step in 0..5 {
            let data = store.read_step(0, step).unwrap();
            offline.run(&data, &mut offline_out).unwrap();
        }

        assert_eq!(insitu_out, offline_out);
        store.destroy().unwrap();
    }
}
